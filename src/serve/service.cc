// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "serve/service.h"

#include <algorithm>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "db/catalog.h"
#include "db/table.h"
#include "extract/record_sink.h"
#include "obs/metrics.h"
#include "obs/stages.h"
#include "ontology/parser.h"
#include "serve/json_util.h"
#include "util/string_util.h"

namespace webrbd {
namespace serve {

namespace {

/// HTTP status for a failed extraction. The mapping is part of the API
/// contract (docs/serving.md): resource caps are the caller's document
/// being too big (413), parse/argument problems are the caller's fault
/// (400), and everything else is ours (500).
int HttpStatusForCode(Status::Code code) {
  switch (code) {
    case Status::Code::kResourceExhausted: return 413;
    case Status::Code::kParseError: return 400;
    case Status::Code::kInvalidArgument: return 400;
    case Status::Code::kNotFound: return 404;
    case Status::Code::kUnsupported: return 501;
    case Status::Code::kFailedPrecondition: return 409;
    default: return 500;
  }
}

HttpResponse JsonResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.content_type = "application/json";
  response.body = std::move(body);
  return response;
}

std::string ErrorJson(const Status& status) {
  return std::string("{\"error\":{\"code\":") +
         JsonString(StatusCodeName(status.code())) +
         ",\"message\":" + JsonString(status.message()) + "}}";
}

HttpResponse ErrorResponse(const Status& status) {
  return JsonResponse(HttpStatusForCode(status.code()), ErrorJson(status));
}

/// Strict non-negative integer parse for limit-override query params.
bool ParseSizeParam(std::string_view text, size_t* out) {
  if (text.empty()) return false;
  size_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9') return false;
    const size_t digit = static_cast<size_t>(c - '0');
    if (value > (static_cast<size_t>(-1) - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

/// Applies the 0-means-unlimited clamp: the override may only tighten the
/// ceiling, never exceed or disable it.
size_t ClampToCeiling(size_t requested, size_t ceiling) {
  if (ceiling == 0) return requested;
  if (requested == 0 || requested > ceiling) return ceiling;
  return requested;
}

int ResolveMaxInflight(int requested) {
  if (requested > 0) return requested;
  const unsigned hardware = std::thread::hardware_concurrency();
  return std::max(2, static_cast<int>(hardware) * 2);
}

/// RAII admission slot: releases on every exit path, keeping the inflight
/// gauge truthful even when a handler fails mid-way.
class AdmissionSlot {
 public:
  AdmissionSlot(std::atomic<int>* inflight, int max_inflight, bool draining) {
    if (draining) return;
    inflight_ = inflight;
    const int now = inflight_->fetch_add(1, std::memory_order_acq_rel) + 1;
    if (now > max_inflight) {
      inflight_->fetch_sub(1, std::memory_order_acq_rel);
      inflight_ = nullptr;
      return;
    }
    admitted_ = true;
    obs::Serve().inflight->Set(static_cast<double>(now));
  }

  ~AdmissionSlot() {
    if (!admitted_) return;
    const int now = inflight_->fetch_sub(1, std::memory_order_acq_rel) - 1;
    obs::Serve().inflight->Set(static_cast<double>(now));
  }

  AdmissionSlot(const AdmissionSlot&) = delete;
  AdmissionSlot& operator=(const AdmissionSlot&) = delete;

  bool admitted() const { return admitted_; }

 private:
  std::atomic<int>* inflight_ = nullptr;
  bool admitted_ = false;
};

}  // namespace

namespace {

/// Shared rendering core so the deprecated-shape and sink-era overloads
/// produce byte-identical responses.
std::string RenderExtractionJsonParts(const std::string& separator,
                                      const DiscoveryResult& discovery,
                                      size_t record_count,
                                      const db::Catalog& catalog) {
  std::string out = "{\"separator\":" + JsonString(separator);
  out += ",\"records\":" + std::to_string(record_count);
  double certainty = 0.0;
  for (const CompoundRankedTag& ranked : discovery.compound_ranking) {
    if (ranked.tag == separator) {
      certainty = ranked.certainty;
      break;
    }
  }
  out += ",\"certainty\":" + FormatDouble(certainty, 6);
  out += ",\"tables\":{";
  bool first = true;
  for (const std::string& name : catalog.TableNames()) {
    const db::Table* table = catalog.GetTable(name);
    if (table == nullptr) continue;
    if (!first) out += ",";
    first = false;
    out += JsonString(name) + ":" + std::to_string(table->row_count());
  }
  out += "}}";
  return out;
}

}  // namespace

std::string RenderExtractionJson(const IntegratedResult& result) {
  return RenderExtractionJsonParts(result.separator, result.discovery,
                                   result.partitions.size(), result.catalog);
}

std::string RenderExtractionJson(const ExtractionOutcome& result,
                                 const db::Catalog& catalog) {
  return RenderExtractionJsonParts(result.separator, result.discovery,
                                   result.partitions.size(), catalog);
}

Result<std::unique_ptr<ExtractionService>> ExtractionService::Create(
    std::string dsl, ServiceOptions options) {
  // Two-phase construction: the service object must exist before the
  // first epoch is built, because the epoch's context points at the
  // service-owned TemplateCache.
  auto service =
      std::make_unique<ExtractionService>(Passkey{}, std::move(options));
  auto state = service->BuildState(std::move(dsl), /*generation=*/0);
  if (!state.ok()) return state.status();
  {
    MutexLock lock(&service->mu_);
    service->state_ = std::move(state).value();
  }
  return service;
}

ExtractionService::ExtractionService(Passkey, ServiceOptions options)
    : options_(std::move(options)),
      max_inflight_(ResolveMaxInflight(options_.max_inflight)) {}

Result<std::shared_ptr<const ExtractionService::ServingState>>
ExtractionService::BuildState(std::string dsl, uint64_t generation) {
  auto state = std::make_shared<ServingState>();
  state->dsl = std::move(dsl);
  state->generation = generation;
  auto ontology = ParseOntology(state->dsl);
  if (!ontology.ok()) return ontology.status();
  state->ontology = std::move(ontology).value();
  ContextOptions context_options = options_.context;
  // The service manages these two fields (see ServiceOptions::context):
  // its private cache keeps reload invalidation local, and the generation
  // keeps a reloaded recognizer from replaying its predecessor's entries.
  context_options.template_cache = &template_cache_;
  context_options.reload_generation = generation;
  auto context =
      ExtractionContext::Create(state->ontology, std::move(context_options));
  if (!context.ok()) return context.status();
  state->context.emplace(std::move(context).value());
  return std::shared_ptr<const ServingState>(std::move(state));
}

std::shared_ptr<const ExtractionService::ServingState>
ExtractionService::state() const {
  MutexLock lock(&mu_);
  return state_;
}

void ExtractionService::BeginDrain() {
  draining_.store(true, std::memory_order_release);
}

uint64_t ExtractionService::generation() const { return state()->generation; }

uint64_t ExtractionService::template_salt() const {
  return state()->context->template_salt();
}

HttpResponse ExtractionService::Handle(const HttpRequest& request) {
  obs::Serve().requests->Increment();
  obs::ScopedTimer latency_timer(obs::Serve().request_latency);
  if (request.path == "/healthz") {
    if (request.method != "GET" && request.method != "HEAD") {
      return JsonResponse(405, ErrorJson(Status::InvalidArgument(
                                   "use GET " + request.path)));
    }
    return HandleHealthz();
  }
  if (request.path == "/metrics") {
    if (request.method != "GET" && request.method != "HEAD") {
      return JsonResponse(405, ErrorJson(Status::InvalidArgument(
                                   "use GET " + request.path)));
    }
    return HandleMetrics();
  }
  if (request.path == "/extract" || request.path == "/extract-batch" ||
      request.path == "/reload-ontology") {
    if (request.method != "POST") {
      return JsonResponse(405, ErrorJson(Status::InvalidArgument(
                                   "use POST " + request.path)));
    }
    if (request.path == "/extract") return HandleExtract(request);
    if (request.path == "/extract-batch") return HandleExtractBatch(request);
    return HandleReload(request);
  }
  return JsonResponse(
      404, ErrorJson(Status::NotFound("no such endpoint: " + request.path)));
}

HttpResponse ExtractionService::HandleHealthz() const {
  HttpResponse response;
  if (draining()) {
    response.status = 503;
    response.body = "draining\n";
  } else {
    response.body = "ok\n";
  }
  return response;
}

HttpResponse ExtractionService::HandleMetrics() const {
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4; charset=utf-8";
  response.body = obs::MetricsRegistry::Global().Snapshot().ToPrometheus();
  return response;
}

Result<robust::DocumentLimits> ExtractionService::ResolveLimits(
    std::string_view query) const {
  robust::DocumentLimits limits = options_.context.discovery.limits;
  for (const QueryParam& param : ParseQuery(query)) {
    size_t value = 0;
    if (!ParseSizeParam(param.value, &value)) {
      return Status::InvalidArgument("query parameter '" + param.key +
                                     "' must be a non-negative integer, got "
                                     "'" + param.value + "'");
    }
    if (param.key == "max-doc-bytes") {
      limits.max_document_bytes =
          ClampToCeiling(value, options_.ceilings.max_document_bytes);
    } else if (param.key == "max-tokens") {
      limits.max_tokens = ClampToCeiling(value, options_.ceilings.max_tokens);
    } else if (param.key == "max-depth") {
      limits.max_tree_depth =
          ClampToCeiling(value, options_.ceilings.max_tree_depth);
    } else {
      return Status::InvalidArgument("unknown query parameter '" + param.key +
                                     "'");
    }
  }
  return limits;
}

HttpResponse ExtractionService::HandleExtract(const HttpRequest& request) {
  auto limits = ResolveLimits(request.query);
  if (!limits.ok()) return ErrorResponse(limits.status());

  AdmissionSlot slot(&inflight_, max_inflight_, draining());
  if (!slot.admitted()) {
    obs::Serve().rejected->Increment();
    HttpResponse response = JsonResponse(
        503, ErrorJson(Status::ResourceExhausted(
                 draining() ? "server is draining"
                            : "admission limit of " +
                                  std::to_string(max_inflight_) +
                                  " in-flight requests reached")));
    response.extra_headers.push_back(
        {"Retry-After", std::to_string(options_.retry_after_seconds)});
    return response;
  }
  if (options_.extract_hook) options_.extract_hook();
  if (request.body.empty()) {
    return ErrorResponse(
        Status::InvalidArgument("request body must be the HTML document"));
  }

  const std::shared_ptr<const ServingState> serving = state();
  const robust::DocumentLimits& defaults =
      serving->context->options().discovery.limits;
  const bool overridden =
      limits->max_document_bytes != defaults.max_document_bytes ||
      limits->max_tokens != defaults.max_tokens ||
      limits->max_tree_depth != defaults.max_tree_depth;
  Result<ExtractionOutcome> result = Status::Internal("unreached");
  std::optional<CatalogSink> catalog_sink;
  if (overridden) {
    // Per-request limits need a context carrying them. The recognizer —
    // the expensive compiled artifact — is shared from the serving epoch;
    // only the wrapper is rebuilt, and only for requests that override.
    ContextOptions override_options = serving->context->options();
    override_options.discovery.limits = std::move(limits).value();
    ExtractionContext override_context =
        ExtractionContext::FromCompiledRecognizer(serving->ontology,
                                                  serving->context->recognizer(),
                                                  std::move(override_options));
    catalog_sink.emplace(override_context.instance_generator());
    if (options_.ingest_sink != nullptr) {
      TeeSink tee({&*catalog_sink, options_.ingest_sink});
      result = override_context.ExtractDocumentInto(request.body, tee);
    } else {
      result = override_context.ExtractDocumentInto(request.body,
                                                    *catalog_sink);
    }
  } else {
    catalog_sink.emplace(serving->context->instance_generator());
    if (options_.ingest_sink != nullptr) {
      TeeSink tee({&*catalog_sink, options_.ingest_sink});
      result = serving->context->ExtractDocumentInto(request.body, tee);
    } else {
      result =
          serving->context->ExtractDocumentInto(request.body, *catalog_sink);
    }
  }
  if (!result.ok()) return ErrorResponse(result.status());
  auto catalog = catalog_sink->TakeCatalog();
  if (!catalog.ok()) return ErrorResponse(catalog.status());
  return JsonResponse(200, RenderExtractionJson(*result, *catalog));
}

HttpResponse ExtractionService::HandleExtractBatch(const HttpRequest& request) {
  AdmissionSlot slot(&inflight_, max_inflight_, draining());
  if (!slot.admitted()) {
    obs::Serve().rejected->Increment();
    HttpResponse response = JsonResponse(
        503, ErrorJson(Status::ResourceExhausted(
                 draining() ? "server is draining"
                            : "admission limit of " +
                                  std::to_string(max_inflight_) +
                                  " in-flight requests reached")));
    response.extra_headers.push_back(
        {"Retry-After", std::to_string(options_.retry_after_seconds)});
    return response;
  }
  if (options_.extract_hook) options_.extract_hook();

  // Split the NDJSON body into lines (final newline optional) and decode
  // each line's "html" value. Decode failures keep their line's slot so
  // responses stay positional.
  std::vector<Result<std::string>> decoded;
  std::string_view body = request.body;
  size_t begin = 0;
  while (begin < body.size()) {
    size_t end = body.find('\n', begin);
    if (end == std::string_view::npos) end = body.size();
    std::string_view line = body.substr(begin, end - begin);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) decoded.push_back(ParseNdjsonHtmlLine(line));
    begin = end + 1;
  }
  if (decoded.empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "request body must hold NDJSON lines of {\"html\": \"...\"}"));
  }

  std::vector<std::string> corpus;
  std::vector<size_t> corpus_line;  // corpus index -> decoded index
  for (size_t i = 0; i < decoded.size(); ++i) {
    if (decoded[i].ok()) {
      corpus.push_back(*decoded[i]);
      corpus_line.push_back(i);
    }
  }

  const std::shared_ptr<const ServingState> serving = state();
  std::vector<std::string> rendered(decoded.size());
  for (size_t i = 0; i < decoded.size(); ++i) {
    if (!decoded[i].ok()) rendered[i] = ErrorJson(decoded[i].status());
  }
  if (!corpus.empty()) {
    // The batch engine on one inline thread: the request already holds
    // exactly one admission slot, so its parallelism budget is one worker
    // — template memoization across the batch's documents still applies
    // (TemplateMemoization::kAuto resolves to ON for corpus runs).
    BatchRunOptions run;
    run.num_threads = 1;
    CatalogSink catalog_sink(serving->context->instance_generator());
    Result<BatchOutcome> batch = Status::Internal("unreached");
    if (options_.ingest_sink != nullptr) {
      TeeSink tee({&catalog_sink, options_.ingest_sink});
      batch = serving->context->ExtractCorpusInto(corpus, tee, run);
    } else {
      batch = serving->context->ExtractCorpusInto(corpus, catalog_sink, run);
    }
    if (!batch.ok()) return ErrorResponse(batch.status());
    for (size_t j = 0; j < batch->documents.size(); ++j) {
      const Result<ExtractionOutcome>& doc = batch->documents[j];
      if (!doc.ok()) {
        rendered[corpus_line[j]] = ErrorJson(doc.status());
        continue;
      }
      auto catalog = catalog_sink.TakeCatalog(static_cast<uint32_t>(j));
      rendered[corpus_line[j]] =
          catalog.ok()
              ? "{\"result\":" + RenderExtractionJson(*doc, *catalog) + "}"
              : ErrorJson(catalog.status());
    }
  }

  std::string out;
  for (size_t i = 0; i < rendered.size(); ++i) {
    out += "{\"index\":" + std::to_string(i) + ",";
    out += rendered[i].substr(1);  // merge into the index-carrying object
    out += "\n";
  }
  HttpResponse response;
  response.content_type = "application/x-ndjson";
  response.body = std::move(out);
  return response;
}

HttpResponse ExtractionService::HandleReload(const HttpRequest& request) {
  const std::shared_ptr<const ServingState> current = state();
  std::string dsl;
  if (!request.body.empty()) {
    dsl = request.body;
  } else if (options_.reload_source) {
    auto loaded = options_.reload_source();
    if (!loaded.ok()) {
      return JsonResponse(400, ErrorJson(loaded.status()));
    }
    dsl = std::move(loaded).value();
  } else {
    dsl = current->dsl;  // recompile in place
  }

  // Generations come from a monotonic counter, not current+1, so two
  // racing reloads can never mint the same epoch (and therefore the same
  // template salt) for different DSL.
  const uint64_t generation =
      reload_counter_.fetch_add(1, std::memory_order_acq_rel) + 1;
  auto built = BuildState(std::move(dsl), generation);
  if (!built.ok()) {
    // The old context keeps serving; a bad reload must never take the
    // daemon down or degrade it.
    return JsonResponse(400, ErrorJson(built.status()));
  }
  {
    MutexLock lock(&mu_);
    state_ = std::move(built).value();
  }
  // Drop every memoized boundary. Entries of earlier generations are
  // unreachable anyway (their salt differs), so this is pure storage
  // reclamation plus a hard guarantee for the staleness contract.
  template_cache_.Clear();
  obs::Serve().reloads->Increment();
  return JsonResponse(
      200, "{\"generation\":" + std::to_string(generation) + "}");
}

}  // namespace serve
}  // namespace webrbd
