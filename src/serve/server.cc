// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/stages.h"

namespace webrbd {
namespace serve {

namespace {

/// Sends all of `data`, riding out partial writes and EINTR. MSG_NOSIGNAL
/// turns a peer hangup into EPIPE instead of a process-killing SIGPIPE.
bool SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

HttpResponse PlainResponse(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.body = std::move(body);
  return response;
}

}  // namespace

Result<std::unique_ptr<HttpServer>> HttpServer::Start(ServerOptions options,
                                                      HttpHandler handler) {
  if (!handler) {
    return Status::InvalidArgument("HttpServer needs a request handler");
  }
  auto server = std::make_unique<HttpServer>(Passkey{}, std::move(options),
                                             std::move(handler));
  WEBRBD_RETURN_IF_ERROR(server->Listen());
  const int io_threads = server->options_.io_threads;
  server->pool_ = std::make_unique<ThreadPool>(io_threads);
  server->accept_thread_ = std::thread([raw = server.get()]() {
    raw->AcceptLoop();
  });
  return server;
}

HttpServer::HttpServer(Passkey, ServerOptions options, HttpHandler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {}

HttpServer::~HttpServer() { Drain(); }

Status HttpServer::Listen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int enable = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable,
                     sizeof(enable));
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port =
      htons(static_cast<uint16_t>(options_.port < 0 ? 0 : options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable bind address '" +
                                   options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&address),
             sizeof(address)) != 0) {
    return Status::Internal("bind " + options_.host + ":" +
                            std::to_string(options_.port) + ": " +
                            std::strerror(errno));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  return Status::OK();
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EINVAL/EBADF: Drain() shut the listening socket down under us —
      // the orderly exit path. Anything else on a healthy socket is
      // transient (EMFILE, ECONNABORTED); back off and keep accepting.
      if (draining()) break;
      if (errno == EMFILE || errno == ENFILE || errno == ECONNABORTED ||
          errno == EAGAIN) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;
    }
    if (draining()) {
      ::close(fd);
      break;
    }
    // Submit blocks when every worker is busy and the queue is full —
    // accept-side backpressure on top of the service's admission gate.
    (void)pool_->Submit([this, fd]() { HandleConnection(fd); });
  }
}

void HttpServer::HandleConnection(int fd) {
  const int enable = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &enable, sizeof(enable));
  std::string buffer;
  // How many idle poll ticks a drain waits for a connection holding a
  // PARTIAL request before giving up on the stalled client (an idle
  // connection with an empty buffer closes on the first draining tick).
  const int max_drain_ticks =
      std::max(1, 5000 / std::max(1, options_.poll_interval_ms));
  int drain_ticks = 0;
  for (;;) {
    // Serve every complete request already buffered (pipelining).
    while (true) {
      const HttpParseOutcome outcome =
          ParseHttpRequest(buffer, options_.parse_limits);
      if (outcome.state == HttpParseState::kError) {
        HttpResponse error = PlainResponse(outcome.error_http_status,
                                           outcome.error_reason + "\n");
        (void)SendAll(fd, SerializeHttpResponse(error, /*keep_alive=*/false));
        ::close(fd);
        return;
      }
      if (outcome.state == HttpParseState::kNeedMore) break;
      buffer.erase(0, outcome.consumed);
      HttpResponse response;
      try {
        response = handler_(outcome.request);
      } catch (const std::exception& e) {
        response = PlainResponse(
            500, std::string("internal handler error: ") + e.what() + "\n");
      } catch (...) {
        response = PlainResponse(500, "internal handler error\n");
      }
      const bool keep_alive = outcome.request.keep_alive && !draining();
      if (!SendAll(fd, SerializeHttpResponse(response, keep_alive)) ||
          !keep_alive) {
        ::close(fd);
        return;
      }
    }
    // Wait for more bytes, watching the drain flag at poll granularity.
    pollfd poll_fd{};
    poll_fd.fd = fd;
    poll_fd.events = POLLIN;
    const int ready = ::poll(&poll_fd, 1, options_.poll_interval_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      if (draining()) {
        if (buffer.empty() || ++drain_ticks >= max_drain_ticks) break;
      }
      continue;
    }
    char chunk[16384];
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;  // peer closed or hard error
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
}

void HttpServer::Drain() {
  // Serialize drains: the winner does the work; late callers block here
  // until it finishes, so no Drain() returns while connections are live.
  MutexLock lock(&drain_mu_);
  if (drained_) return;
  const auto start = std::chrono::steady_clock::now();
  draining_.store(true, std::memory_order_release);
  if (listen_fd_ >= 0) {
    // Pops the accept thread out of accept(2); new connection attempts
    // are refused from here on.
    (void)::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  // Finishes every queued and in-flight connection (each notices the
  // drain flag within one poll tick once idle).
  if (pool_ != nullptr) pool_->Shutdown();
  obs::Serve().drain->Observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  drained_ = true;
}

}  // namespace serve
}  // namespace webrbd
