// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "serve/json_util.h"

#include <cstdint>
#include <cstdio>
#include <optional>
#include <utility>

namespace webrbd {
namespace serve {

namespace {

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

/// Appends the UTF-8 encoding of `code_point` (already validated to be a
/// scalar value or an unpaired surrogate, which is encoded as U+FFFD).
void AppendUtf8(uint32_t code_point, std::string* out) {
  if (code_point >= 0xD800 && code_point <= 0xDFFF) code_point = 0xFFFD;
  if (code_point < 0x80) {
    *out += static_cast<char>(code_point);
  } else if (code_point < 0x800) {
    *out += static_cast<char>(0xC0 | (code_point >> 6));
    *out += static_cast<char>(0x80 | (code_point & 0x3F));
  } else if (code_point < 0x10000) {
    *out += static_cast<char>(0xE0 | (code_point >> 12));
    *out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (code_point & 0x3F));
  } else {
    *out += static_cast<char>(0xF0 | (code_point >> 18));
    *out += static_cast<char>(0x80 | ((code_point >> 12) & 0x3F));
    *out += static_cast<char>(0x80 | ((code_point >> 6) & 0x3F));
    *out += static_cast<char>(0x80 | (code_point & 0x3F));
  }
}

/// Decodes the JSON string whose opening quote is at `pos`; on success
/// leaves `pos` one past the closing quote.
[[nodiscard]] Result<std::string> DecodeString(std::string_view text,
                                               size_t* pos) {
  if (*pos >= text.size() || text[*pos] != '"') {
    return Status::ParseError("expected '\"' at offset " +
                              std::to_string(*pos));
  }
  std::string out;
  size_t i = *pos + 1;
  while (i < text.size()) {
    const char c = text[i];
    if (c == '"') {
      *pos = i + 1;
      return out;
    }
    if (c != '\\') {
      out += c;
      ++i;
      continue;
    }
    if (i + 1 >= text.size()) break;
    const char escape = text[i + 1];
    i += 2;
    switch (escape) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (i + 4 > text.size()) {
          return Status::ParseError("truncated \\u escape");
        }
        uint32_t code = 0;
        for (size_t d = 0; d < 4; ++d) {
          const int v = HexValue(text[i + d]);
          if (v < 0) return Status::ParseError("malformed \\u escape");
          code = code * 16 + static_cast<uint32_t>(v);
        }
        i += 4;
        // Surrogate pair: \uD800-\uDBFF must be followed by \uDC00-\uDFFF.
        if (code >= 0xD800 && code <= 0xDBFF && i + 6 <= text.size() &&
            text[i] == '\\' && text[i + 1] == 'u') {
          uint32_t low = 0;
          bool ok = true;
          for (size_t d = 0; d < 4; ++d) {
            const int v = HexValue(text[i + 2 + d]);
            if (v < 0) {
              ok = false;
              break;
            }
            low = low * 16 + static_cast<uint32_t>(v);
          }
          if (ok && low >= 0xDC00 && low <= 0xDFFF) {
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            i += 6;
          }
        }
        AppendUtf8(code, &out);
        break;
      }
      default:
        return Status::ParseError(std::string("invalid escape '\\") + escape +
                                  "'");
    }
  }
  return Status::ParseError("unterminated JSON string");
}

void SkipSpace(std::string_view text, size_t* pos) {
  while (*pos < text.size() &&
         (text[*pos] == ' ' || text[*pos] == '\t' || text[*pos] == '\r' ||
          text[*pos] == '\n')) {
    ++*pos;
  }
}

/// Skips one non-string JSON value (number, literal, or balanced
/// object/array) without validating it deeply — unknown keys are ignored,
/// not interpreted.
[[nodiscard]] Status SkipValue(std::string_view text, size_t* pos) {
  SkipSpace(text, pos);
  if (*pos >= text.size()) return Status::ParseError("truncated JSON value");
  const char c = text[*pos];
  if (c == '"') {
    auto decoded = DecodeString(text, pos);
    if (!decoded.ok()) return decoded.status();
    return Status::OK();
  }
  if (c == '{' || c == '[') {
    const char open = c;
    const char close = open == '{' ? '}' : ']';
    int depth = 0;
    bool in_string = false;
    while (*pos < text.size()) {
      const char t = text[*pos];
      if (in_string) {
        if (t == '\\') {
          ++*pos;  // skip the escaped character too
        } else if (t == '"') {
          in_string = false;
        }
      } else if (t == '"') {
        in_string = true;
      } else if (t == open) {
        ++depth;
      } else if (t == close) {
        --depth;
        if (depth == 0) {
          ++*pos;
          return Status::OK();
        }
      }
      ++*pos;
    }
    return Status::ParseError("unbalanced JSON container");
  }
  // Number / true / false / null: consume to the next delimiter.
  while (*pos < text.size() && text[*pos] != ',' && text[*pos] != '}' &&
         text[*pos] != ']' && text[*pos] != ' ' && text[*pos] != '\t') {
    ++*pos;
  }
  return Status::OK();
}

}  // namespace

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string JsonString(std::string_view text) {
  return "\"" + JsonEscape(text) + "\"";
}

Result<std::string> ParseNdjsonHtmlLine(std::string_view line) {
  size_t pos = 0;
  SkipSpace(line, &pos);
  if (pos >= line.size() || line[pos] != '{') {
    return Status::ParseError("NDJSON line must be a JSON object");
  }
  ++pos;
  std::optional<std::string> html;
  SkipSpace(line, &pos);
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
  } else {
    while (true) {
      SkipSpace(line, &pos);
      auto key = DecodeString(line, &pos);
      if (!key.ok()) return key.status();
      SkipSpace(line, &pos);
      if (pos >= line.size() || line[pos] != ':') {
        return Status::ParseError("expected ':' after object key");
      }
      ++pos;
      SkipSpace(line, &pos);
      if (*key == "html") {
        auto value = DecodeString(line, &pos);
        if (!value.ok()) {
          return Status::ParseError("\"html\" must be a JSON string: " +
                                    value.status().message());
        }
        html = std::move(value).value();
      } else {
        WEBRBD_RETURN_IF_ERROR(SkipValue(line, &pos));
      }
      SkipSpace(line, &pos);
      if (pos < line.size() && line[pos] == ',') {
        ++pos;
        continue;
      }
      if (pos < line.size() && line[pos] == '}') {
        ++pos;
        break;
      }
      return Status::ParseError("expected ',' or '}' in object");
    }
  }
  SkipSpace(line, &pos);
  if (pos != line.size()) {
    return Status::ParseError("trailing bytes after JSON object");
  }
  if (!html.has_value()) {
    return Status::ParseError("NDJSON line is missing the \"html\" key");
  }
  return std::move(html).value();
}

}  // namespace serve
}  // namespace webrbd
