// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "text/char_class.h"

#include <algorithm>

namespace webrbd {

CharClass CharClass::Single(unsigned char c) { return Range(c, c); }

CharClass CharClass::Range(unsigned char lo, unsigned char hi) {
  CharClass cc;
  cc.Add(lo, hi);
  return cc;
}

CharClass CharClass::Digits() { return Range('0', '9'); }

CharClass CharClass::WordChars() {
  CharClass cc;
  cc.Add('a', 'z');
  cc.Add('A', 'Z');
  cc.Add('0', '9');
  cc.Add('_', '_');
  return cc;
}

CharClass CharClass::Whitespace() {
  CharClass cc;
  cc.Add(' ', ' ');
  cc.Add('\t', '\t');
  cc.Add('\n', '\n');
  cc.Add('\r', '\r');
  cc.Add('\f', '\f');
  cc.Add('\v', '\v');
  return cc;
}

CharClass CharClass::AnyByte() { return Range(0, 255); }

CharClass CharClass::AnyExceptNewline() {
  CharClass cc;
  cc.Add(0, static_cast<unsigned char>('\n' - 1));
  cc.Add(static_cast<unsigned char>('\n' + 1), 255);
  return cc;
}

void CharClass::Add(unsigned char lo, unsigned char hi) {
  if (lo > hi) std::swap(lo, hi);
  ranges_.emplace_back(lo, hi);
  Normalize();
}

void CharClass::AddClass(const CharClass& other) {
  for (const auto& [lo, hi] : other.ranges_) ranges_.emplace_back(lo, hi);
  Normalize();
}

void CharClass::Negate() {
  std::vector<std::pair<unsigned char, unsigned char>> complement;
  int next = 0;
  for (const auto& [lo, hi] : ranges_) {
    if (next < lo) {
      complement.emplace_back(static_cast<unsigned char>(next),
                              static_cast<unsigned char>(lo - 1));
    }
    next = hi + 1;
  }
  if (next <= 255) {
    complement.emplace_back(static_cast<unsigned char>(next), 255);
  }
  ranges_ = std::move(complement);
}

void CharClass::FoldAsciiCase() {
  std::vector<std::pair<unsigned char, unsigned char>> extra;
  for (const auto& [lo, hi] : ranges_) {
    for (int c = lo; c <= hi; ++c) {
      if (c >= 'a' && c <= 'z') {
        unsigned char up = static_cast<unsigned char>(c - 'a' + 'A');
        extra.emplace_back(up, up);
      } else if (c >= 'A' && c <= 'Z') {
        unsigned char low = static_cast<unsigned char>(c - 'A' + 'a');
        extra.emplace_back(low, low);
      }
    }
  }
  for (const auto& r : extra) ranges_.push_back(r);
  Normalize();
}

bool CharClass::Matches(unsigned char c) const {
  // Ranges are sorted; binary search the candidate range.
  auto it = std::upper_bound(
      ranges_.begin(), ranges_.end(), c,
      [](unsigned char value, const auto& range) { return value < range.first; });
  if (it == ranges_.begin()) return false;
  --it;
  return c >= it->first && c <= it->second;
}

void CharClass::Normalize() {
  if (ranges_.empty()) return;
  std::sort(ranges_.begin(), ranges_.end());
  std::vector<std::pair<unsigned char, unsigned char>> merged;
  merged.push_back(ranges_[0]);
  for (size_t i = 1; i < ranges_.size(); ++i) {
    auto& last = merged.back();
    const auto& cur = ranges_[i];
    if (cur.first <= last.second ||
        (last.second < 255 && cur.first == last.second + 1)) {
      last.second = std::max(last.second, cur.second);
    } else {
      merged.push_back(cur);
    }
  }
  ranges_ = std::move(merged);
}

namespace {
std::string RenderByte(unsigned char c) {
  if (c >= 0x21 && c <= 0x7e && c != '-' && c != ']' && c != '\\') {
    return std::string(1, static_cast<char>(c));
  }
  char buf[8];
  std::snprintf(buf, sizeof(buf), "\\x%02x", c);
  return buf;
}
}  // namespace

std::string CharClass::ToString() const {
  std::string out = "[";
  for (const auto& [lo, hi] : ranges_) {
    out += RenderByte(lo);
    if (hi != lo) {
      out += "-";
      out += RenderByte(hi);
    }
  }
  out += "]";
  return out;
}

}  // namespace webrbd
