// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Pike VM: executes a compiled RegexProgram over a text in O(len * insts)
// worst case, with no backtracking blow-ups regardless of pattern shape.

#ifndef WEBRBD_TEXT_REGEX_VM_H_
#define WEBRBD_TEXT_REGEX_VM_H_

#include <cstddef>
#include <optional>
#include <string_view>

#include "text/regex_program.h"

namespace webrbd {

/// A half-open [begin, end) match span within the searched text.
struct RegexMatch {
  size_t begin = 0;
  size_t end = 0;

  bool operator==(const RegexMatch& other) const {
    return begin == other.begin && end == other.end;
  }
};

/// Finds the leftmost match (Perl-style leftmost-first semantics) starting
/// at or after `start`. Returns nullopt when nothing matches.
std::optional<RegexMatch> VmFind(const RegexProgram& program,
                                 std::string_view text, size_t start);

/// True iff the program matches the entire text.
bool VmFullMatch(const RegexProgram& program, std::string_view text);

}  // namespace webrbd

#endif  // WEBRBD_TEXT_REGEX_VM_H_
