// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#ifndef WEBRBD_TEXT_REGEX_PARSER_H_
#define WEBRBD_TEXT_REGEX_PARSER_H_

#include <memory>
#include <string_view>

#include "text/regex_ast.h"
#include "util/result.h"

namespace webrbd {

/// Options controlling pattern interpretation.
struct RegexOptions {
  /// When true, ASCII letters match either case.
  bool case_insensitive = false;

  /// Epsilon-closure budget copied into the compiled program (0 =
  /// unbounded); see RegexProgram::closure_budget. Ontology-compiled
  /// patterns set this from DocumentLimits::max_regex_closure_depth.
  size_t closure_budget = 0;
};

/// Parses `pattern` into an AST.
///
/// Supported syntax:
///   literals, `.`
///   escapes: \d \D \w \W \s \S, \n \t \r \f \v, \\ \. \* etc.
///   classes: [abc], [a-z0-9], [^...], escapes inside classes
///   grouping: (...) and (?:...) (both non-capturing; this engine reports
///             whole-match positions only)
///   alternation: a|b
///   greedy quantifiers: * + ? {m} {m,} {m,n}
///   anchors: ^ $ \b \B
///
/// Unsupported (rejected with ParseError): non-greedy quantifiers (`*?`),
/// backreferences, lookaround.
[[nodiscard]] Result<std::unique_ptr<RegexNode>> ParseRegex(std::string_view pattern,
                                              const RegexOptions& options);

}  // namespace webrbd

#endif  // WEBRBD_TEXT_REGEX_PARSER_H_
