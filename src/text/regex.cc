// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "text/regex.h"

#include "text/regex_compiler.h"

namespace webrbd {

Result<Regex> Regex::Compile(std::string_view pattern, RegexOptions options) {
  auto ast = ParseRegex(pattern, options);
  if (!ast.ok()) return ast.status();
  auto program = CompileRegex(**ast);
  if (!program.ok()) return program.status();
  RegexProgram compiled = std::move(program).value();
  compiled.closure_budget = options.closure_budget;
  return Regex(std::string(pattern), std::move(compiled));
}

bool Regex::FullMatch(std::string_view text) const {
  return VmFullMatch(*program_, text);
}

bool Regex::PartialMatch(std::string_view text) const {
  return VmFind(*program_, text, 0).has_value();
}

std::optional<RegexMatch> Regex::Find(std::string_view text,
                                      size_t start) const {
  return VmFind(*program_, text, start);
}

std::vector<RegexMatch> Regex::FindAll(std::string_view text) const {
  std::vector<RegexMatch> matches;
  size_t pos = 0;
  while (pos <= text.size()) {
    std::optional<RegexMatch> m = VmFind(*program_, text, pos);
    if (!m.has_value()) break;
    matches.push_back(*m);
    pos = m->end > m->begin ? m->end : m->begin + 1;
  }
  return matches;
}

size_t Regex::CountMatches(std::string_view text) const {
  size_t count = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    std::optional<RegexMatch> m = VmFind(*program_, text, pos);
    if (!m.has_value()) break;
    ++count;
    pos = m->end > m->begin ? m->end : m->begin + 1;
  }
  return count;
}

}  // namespace webrbd
