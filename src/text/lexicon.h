// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Lexicon: a dictionary of words and multi-word phrases with position-aware
// matching over plain text. The paper's data frames pair regex-style value
// patterns with lexicons (e.g. lists of automobile makes, given names); the
// recognizer uses both to detect constants and keywords.

#ifndef WEBRBD_TEXT_LEXICON_H_
#define WEBRBD_TEXT_LEXICON_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace webrbd {

/// A matched lexicon entry within a text.
struct LexiconMatch {
  size_t begin = 0;          ///< byte offset of first matched character
  size_t end = 0;            ///< one past the last matched character
  std::string entry;         ///< the canonical (lowercased) lexicon entry
};

/// An immutable-after-build set of words/phrases, matched case-insensitively
/// on word boundaries. Multi-word phrases match across arbitrary runs of
/// whitespace between their words.
class Lexicon {
 public:
  Lexicon() = default;

  /// Builds from entries; each entry is a word or a space-separated phrase.
  explicit Lexicon(const std::vector<std::string>& entries);

  /// Adds one word or phrase. Duplicate adds are ignored.
  void Add(std::string_view entry);

  /// Number of distinct entries.
  size_t size() const { return entry_count_; }
  bool empty() const { return entry_count_ == 0; }

  /// True iff the given word/phrase is an entry (case-insensitive).
  bool Contains(std::string_view entry) const;

  /// Finds all non-overlapping entry occurrences, longest-phrase-first at
  /// each position, left to right.
  std::vector<LexiconMatch> FindAll(std::string_view text) const;

  /// Number of matches (same scan as FindAll without materializing).
  size_t CountMatches(std::string_view text) const;

 private:
  struct Phrase {
    std::vector<std::string> words;  // lowercased
    std::string canonical;           // words joined by single spaces
  };

  // First lowercased word -> phrases beginning with it, longest first.
  std::unordered_map<std::string, std::vector<Phrase>> by_first_word_;
  size_t entry_count_ = 0;
};

}  // namespace webrbd

#endif  // WEBRBD_TEXT_LEXICON_H_
