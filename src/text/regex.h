// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Public facade over the regex parser / compiler / Pike VM. This is the
// matching engine behind the paper's "constant/keyword matching rules": the
// ontology layer compiles data-frame value patterns and keyword phrases to
// Regex objects, and the recognizer runs FindAll over document plain text.

#ifndef WEBRBD_TEXT_REGEX_H_
#define WEBRBD_TEXT_REGEX_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "text/regex_parser.h"
#include "text/regex_program.h"
#include "text/regex_vm.h"
#include "util/result.h"

namespace webrbd {

/// A compiled, immutable regular expression.
///
/// Thread-compatible: a const Regex may be used from multiple threads.
/// Matching is guaranteed linear in text length (Thompson NFA; no
/// backtracking), so untrusted patterns cannot cause exponential blow-up.
class Regex {
 public:
  /// Compiles `pattern`. See ParseRegex() for the supported dialect.
  [[nodiscard]] static Result<Regex> Compile(std::string_view pattern,
                               RegexOptions options = {});

  /// The original pattern text.
  const std::string& pattern() const { return pattern_; }

  /// True iff the whole text matches.
  bool FullMatch(std::string_view text) const;

  /// True iff any substring matches.
  bool PartialMatch(std::string_view text) const;

  /// Leftmost match at or after `start`, or nullopt.
  std::optional<RegexMatch> Find(std::string_view text, size_t start = 0) const;

  /// All non-overlapping matches, left to right. Empty-width matches advance
  /// by one byte so the scan always terminates.
  std::vector<RegexMatch> FindAll(std::string_view text) const;

  /// Number of non-overlapping matches; cheaper than materializing FindAll
  /// only in allocation, same time complexity.
  size_t CountMatches(std::string_view text) const;

  /// Compiled program (exposed for tests and diagnostics).
  const RegexProgram& program() const { return *program_; }

 private:
  Regex(std::string pattern, RegexProgram program)
      : pattern_(std::move(pattern)),
        program_(std::make_shared<const RegexProgram>(std::move(program))) {}

  std::string pattern_;
  // shared_ptr keeps Regex cheaply copyable; the program is immutable.
  std::shared_ptr<const RegexProgram> program_;
};

}  // namespace webrbd

#endif  // WEBRBD_TEXT_REGEX_H_
