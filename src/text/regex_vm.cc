// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "text/regex_vm.h"

#include <vector>

#include "obs/stages.h"

namespace webrbd {

namespace {

bool IsWordByte(std::string_view text, size_t index) {
  if (index >= text.size()) return false;
  char c = text[index];
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_';
}

bool IsWordByteBefore(std::string_view text, size_t pos) {
  return pos > 0 && IsWordByte(text, pos - 1);
}

bool AssertHolds(AnchorKind anchor, std::string_view text, size_t pos) {
  switch (anchor) {
    case AnchorKind::kTextBegin:
      return pos == 0;
    case AnchorKind::kTextEnd:
      return pos == text.size();
    case AnchorKind::kWordBoundary:
      return IsWordByteBefore(text, pos) != IsWordByte(text, pos);
    case AnchorKind::kNotWordBoundary:
      return IsWordByteBefore(text, pos) == IsWordByte(text, pos);
  }
  return false;
}

// A VM thread: program counter plus the text index at which its match began.
struct Thread {
  int pc;
  size_t start;
};

class ThreadList {
 public:
  explicit ThreadList(size_t program_size) : seen_(program_size, 0) {}

  void NewGeneration() {
    ++generation_;
    threads_.clear();
  }

  bool Mark(int pc) {
    if (seen_[pc] == generation_) return false;
    seen_[pc] = generation_;
    return true;
  }

  void Push(Thread t) { threads_.push_back(t); }

  const std::vector<Thread>& threads() const { return threads_; }

 private:
  std::vector<uint64_t> seen_;
  uint64_t generation_ = 0;
  std::vector<Thread> threads_;
};

class PikeVm {
 public:
  PikeVm(const RegexProgram& program, std::string_view text)
      : program_(program),
        text_(text),
        clist_(program.insts.size()),
        nlist_(program.insts.size()) {}

  // Leftmost-first search from `start`.
  std::optional<RegexMatch> Find(size_t start) {
    std::optional<RegexMatch> best;
    clist_.NewGeneration();
    for (size_t pos = start;; ++pos) {
      // Seed a new potential match start unless one is already committed.
      if (!best.has_value() && pos <= text_.size() &&
          (pos == start || !program_.anchored_at_start)) {
        AddThread(&clist_, 0, pos, pos);
      }
      // Stop only when no thread is alive AND no future seed can revive the
      // search (a match is committed, the text is exhausted, or the pattern
      // is anchored). An empty list alone is not terminal: a seed whose
      // leading assertion failed here may succeed at a later position.
      if (clist_.threads().empty() &&
          (best.has_value() || pos >= text_.size() ||
           program_.anchored_at_start)) {
        break;
      }

      nlist_.NewGeneration();
      const auto& threads = clist_.threads();
      for (size_t i = 0; i < threads.size(); ++i) {
        const Thread& t = threads[i];
        const RegexInst& inst = program_.insts[t.pc];
        if (inst.op == RegexInst::Op::kMatch) {
          // Leftmost-first: this match wins over anything a lower-priority
          // thread could produce; cut the remainder of this generation.
          best = RegexMatch{t.start, pos};
          break;
        }
        // Only kClass instructions remain (epsilon ops were resolved when
        // the thread was added).
        if (pos < text_.size() &&
            program_.classes[inst.class_id].Matches(
                static_cast<unsigned char>(text_[pos]))) {
          AddThread(&nlist_, t.pc + 1, pos + 1, t.start);
        }
      }
      std::swap(clist_, nlist_);
      if (pos >= text_.size()) break;
    }
    return best;
  }

  // Anchored whole-text match: succeeds iff some thread reaches kMatch
  // exactly at end of text.
  bool FullMatch() {
    clist_.NewGeneration();
    AddThread(&clist_, 0, 0, 0);
    for (size_t pos = 0;; ++pos) {
      if (clist_.threads().empty()) return false;
      nlist_.NewGeneration();
      for (const Thread& t : clist_.threads()) {
        const RegexInst& inst = program_.insts[t.pc];
        if (inst.op == RegexInst::Op::kMatch) {
          if (pos == text_.size()) return true;
          continue;  // a partial match is not a full match; thread dies
        }
        if (pos < text_.size() &&
            program_.classes[inst.class_id].Matches(
                static_cast<unsigned char>(text_[pos]))) {
          AddThread(&nlist_, t.pc + 1, pos + 1, 0);
        }
      }
      std::swap(clist_, nlist_);
      if (pos >= text_.size()) return false;
    }
  }

 private:
  // Adds pc to the list, resolving epsilon transitions (jmp/split/assert)
  // immediately so that lists only ever hold kClass / kMatch threads.
  //
  // Iterative on an explicit work stack: the previous recursive version
  // descended once per kJmp/kSplit, so a long alternation (a split chain
  // linear in pattern size) overflowed the machine stack before matching a
  // single byte. Popping LIFO with a split's preferred branch pushed last
  // reproduces the recursive expansion order exactly, which is what gives
  // the VM its leftmost-first semantics.
  void AddThread(ThreadList* list, int pc, size_t pos, size_t start) {
    work_.clear();
    work_.push_back(pc);
    size_t expanded = 0;
    while (!work_.empty()) {
      int current = work_.back();
      work_.pop_back();
      if (!list->Mark(current)) continue;
      if (program_.closure_budget != 0 && ++expanded > program_.closure_budget) {
        // Budget backstop: degrade conservatively (drop the remaining
        // closure; a match may be missed) rather than keep expanding.
        obs::Robust().trip_regex_closure->Increment();
        return;
      }
      const RegexInst& inst = program_.insts[current];
      switch (inst.op) {
        case RegexInst::Op::kJmp:
          work_.push_back(inst.x);
          break;
        case RegexInst::Op::kSplit:
          // x is the preferred branch: push it last so it pops (and fully
          // expands) first.
          work_.push_back(inst.y);
          work_.push_back(inst.x);
          break;
        case RegexInst::Op::kAssert:
          if (AssertHolds(inst.anchor, text_, pos)) {
            work_.push_back(current + 1);
          }
          break;
        case RegexInst::Op::kClass:
        case RegexInst::Op::kMatch:
          list->Push(Thread{current, start});
          break;
      }
    }
  }

  const RegexProgram& program_;
  std::string_view text_;
  ThreadList clist_;
  ThreadList nlist_;
  std::vector<int> work_;  // AddThread's explicit closure stack, reused
};

}  // namespace

std::optional<RegexMatch> VmFind(const RegexProgram& program,
                                 std::string_view text, size_t start) {
  if (start > text.size()) return std::nullopt;
  PikeVm vm(program, text);
  return vm.Find(start);
}

bool VmFullMatch(const RegexProgram& program, std::string_view text) {
  PikeVm vm(program, text);
  return vm.FullMatch();
}

}  // namespace webrbd
