// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Abstract syntax tree for the regex dialect supported by webrbd's matcher.
// The dialect covers what the paper's data frames and keyword rules need:
// literals, character classes, Perl escapes, alternation, grouping, greedy
// quantifiers (including bounded repetition), and zero-width anchors.

#ifndef WEBRBD_TEXT_REGEX_AST_H_
#define WEBRBD_TEXT_REGEX_AST_H_

#include <memory>
#include <vector>

#include "text/char_class.h"

namespace webrbd {

/// Kind of zero-width assertion.
enum class AnchorKind {
  kTextBegin,        ///< ^  (also matches after \n: we use multiline-off,
                     ///<     text-begin only — documents are matched whole)
  kTextEnd,          ///< $
  kWordBoundary,     ///< \b
  kNotWordBoundary,  ///< \B
};

/// One node in a regex AST.
struct RegexNode {
  enum class Kind {
    kEmpty,    ///< matches the empty string
    kClass,    ///< one byte from char_class (literals are 1-byte classes)
    kConcat,   ///< children in sequence
    kAlternate,///< any one child
    kRepeat,   ///< child repeated [min, max] times; max < 0 means unbounded
    kAnchor,   ///< zero-width assertion
  };

  Kind kind = Kind::kEmpty;
  CharClass char_class;                            // kClass
  std::vector<std::unique_ptr<RegexNode>> children; // kConcat / kAlternate /
                                                    // kRepeat (exactly one)
  int min = 0;                                     // kRepeat
  int max = -1;                                    // kRepeat (-1 = infinity)
  AnchorKind anchor = AnchorKind::kTextBegin;      // kAnchor

  /// Deep copy, used to expand bounded repetition at compile time.
  std::unique_ptr<RegexNode> Clone() const;
};

/// Convenience constructors.
std::unique_ptr<RegexNode> MakeEmptyNode();
std::unique_ptr<RegexNode> MakeClassNode(CharClass cc);
std::unique_ptr<RegexNode> MakeConcatNode(
    std::vector<std::unique_ptr<RegexNode>> children);
std::unique_ptr<RegexNode> MakeAlternateNode(
    std::vector<std::unique_ptr<RegexNode>> children);
std::unique_ptr<RegexNode> MakeRepeatNode(std::unique_ptr<RegexNode> child,
                                          int min, int max);
std::unique_ptr<RegexNode> MakeAnchorNode(AnchorKind anchor);

}  // namespace webrbd

#endif  // WEBRBD_TEXT_REGEX_AST_H_
