// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#ifndef WEBRBD_TEXT_CHAR_CLASS_H_
#define WEBRBD_TEXT_CHAR_CLASS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace webrbd {

/// A set of byte values, represented as sorted disjoint inclusive ranges.
/// Used both by the regex engine ([a-z], \d, ...) and by literal characters
/// (a single one-byte range).
class CharClass {
 public:
  CharClass() = default;

  /// Factory: class containing exactly one byte.
  static CharClass Single(unsigned char c);

  /// Factory: class containing an inclusive byte range.
  static CharClass Range(unsigned char lo, unsigned char hi);

  /// Factories for the Perl-style escapes.
  static CharClass Digits();        ///< \d
  static CharClass WordChars();     ///< \w  ([A-Za-z0-9_])
  static CharClass Whitespace();    ///< \s
  static CharClass AnyByte();       ///< every byte value
  static CharClass AnyExceptNewline();  ///< `.`

  /// Adds an inclusive range (need not be disjoint from existing ranges).
  void Add(unsigned char lo, unsigned char hi);

  /// Adds every byte of another class.
  void AddClass(const CharClass& other);

  /// Replaces the set with its complement over all 256 byte values.
  void Negate();

  /// For every ASCII letter in the set, adds the other-case letter.
  void FoldAsciiCase();

  /// Membership test.
  bool Matches(unsigned char c) const;

  /// True iff the set is empty.
  bool empty() const { return ranges_.empty(); }

  /// Normalized (sorted, disjoint, merged) ranges.
  const std::vector<std::pair<unsigned char, unsigned char>>& ranges() const {
    return ranges_;
  }

  /// Diagnostic rendering, e.g. "[a-z0-9]".
  std::string ToString() const;

 private:
  void Normalize();

  // Kept normalized: sorted by lo, disjoint, non-adjacent merged.
  std::vector<std::pair<unsigned char, unsigned char>> ranges_;
};

}  // namespace webrbd

#endif  // WEBRBD_TEXT_CHAR_CLASS_H_
