// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "text/regex_compiler.h"

#include <string>

namespace webrbd {

namespace {

// Caps the compiled program size; bounded repetition over large groups can
// otherwise balloon.
constexpr size_t kMaxProgramSize = 1 << 18;

class Compiler {
 public:
  Result<RegexProgram> Compile(const RegexNode& root) {
    WEBRBD_RETURN_IF_ERROR(Emit(root));
    program_.insts.push_back(RegexInst{RegexInst::Op::kMatch, 0, 0, 0,
                                       AnchorKind::kTextBegin});
    program_.anchored_at_start = StartsAnchored(root);
    return std::move(program_);
  }

 private:
  int Here() const { return static_cast<int>(program_.insts.size()); }

  Status CheckSize() const {
    if (program_.insts.size() > kMaxProgramSize) {
      return Status::InvalidArgument("regex program too large");
    }
    return Status::OK();
  }

  Status Emit(const RegexNode& node) {
    WEBRBD_RETURN_IF_ERROR(CheckSize());
    switch (node.kind) {
      case RegexNode::Kind::kEmpty:
        return Status::OK();
      case RegexNode::Kind::kClass: {
        RegexInst inst;
        inst.op = RegexInst::Op::kClass;
        inst.class_id = InternClass(node.char_class);
        program_.insts.push_back(inst);
        return Status::OK();
      }
      case RegexNode::Kind::kAnchor: {
        RegexInst inst;
        inst.op = RegexInst::Op::kAssert;
        inst.anchor = node.anchor;
        program_.insts.push_back(inst);
        return Status::OK();
      }
      case RegexNode::Kind::kConcat: {
        for (const auto& child : node.children) {
          WEBRBD_RETURN_IF_ERROR(Emit(*child));
        }
        return Status::OK();
      }
      case RegexNode::Kind::kAlternate:
        return EmitAlternate(node);
      case RegexNode::Kind::kRepeat:
        return EmitRepeat(node);
    }
    return Status::Internal("unknown regex AST node kind");
  }

  Status EmitAlternate(const RegexNode& node) {
    // branch_1 | branch_2 | ... compiles to a chain of splits with jumps
    // past the remaining branches.
    std::vector<int> jump_slots;
    for (size_t i = 0; i < node.children.size(); ++i) {
      const bool last = i + 1 == node.children.size();
      int split_slot = -1;
      if (!last) {
        split_slot = Here();
        program_.insts.push_back(RegexInst{RegexInst::Op::kSplit, 0, 0, 0,
                                           AnchorKind::kTextBegin});
        program_.insts[split_slot].x = Here();
      }
      WEBRBD_RETURN_IF_ERROR(Emit(*node.children[i]));
      if (!last) {
        jump_slots.push_back(Here());
        program_.insts.push_back(RegexInst{RegexInst::Op::kJmp, 0, 0, 0,
                                           AnchorKind::kTextBegin});
        program_.insts[split_slot].y = Here();
      }
    }
    for (int slot : jump_slots) program_.insts[slot].x = Here();
    return Status::OK();
  }

  Status EmitRepeat(const RegexNode& node) {
    const RegexNode& child = *node.children[0];
    const int min = node.min;
    const int max = node.max;

    // Mandatory copies.
    for (int i = 0; i < min; ++i) {
      WEBRBD_RETURN_IF_ERROR(Emit(child));
    }

    if (max < 0) {
      // child*  ==>  L: split(body, out); body; jmp L
      int split_slot = Here();
      program_.insts.push_back(RegexInst{RegexInst::Op::kSplit, 0, 0, 0,
                                         AnchorKind::kTextBegin});
      program_.insts[split_slot].x = Here();
      WEBRBD_RETURN_IF_ERROR(Emit(child));
      program_.insts.push_back(RegexInst{RegexInst::Op::kJmp, split_slot, 0, 0,
                                         AnchorKind::kTextBegin});
      program_.insts[split_slot].y = Here();
      return Status::OK();
    }

    // Optional copies: each gets a split that can bail to the end.
    std::vector<int> bail_slots;
    for (int i = min; i < max; ++i) {
      int split_slot = Here();
      program_.insts.push_back(RegexInst{RegexInst::Op::kSplit, 0, 0, 0,
                                         AnchorKind::kTextBegin});
      program_.insts[split_slot].x = Here();
      bail_slots.push_back(split_slot);
      WEBRBD_RETURN_IF_ERROR(Emit(child));
    }
    for (int slot : bail_slots) program_.insts[slot].y = Here();
    return Status::OK();
  }

  int InternClass(const CharClass& cc) {
    for (size_t i = 0; i < program_.classes.size(); ++i) {
      if (program_.classes[i].ranges() == cc.ranges()) {
        return static_cast<int>(i);
      }
    }
    program_.classes.push_back(cc);
    return static_cast<int>(program_.classes.size() - 1);
  }

  // Conservatively detects patterns that can only start matching at text
  // begin (a leading ^ on every alternation branch).
  static bool StartsAnchored(const RegexNode& node) {
    switch (node.kind) {
      case RegexNode::Kind::kAnchor:
        return node.anchor == AnchorKind::kTextBegin;
      case RegexNode::Kind::kConcat:
        return !node.children.empty() && StartsAnchored(*node.children[0]);
      case RegexNode::Kind::kAlternate: {
        for (const auto& child : node.children) {
          if (!StartsAnchored(*child)) return false;
        }
        return !node.children.empty();
      }
      case RegexNode::Kind::kRepeat:
        return node.min > 0 && StartsAnchored(*node.children[0]);
      default:
        return false;
    }
  }

  RegexProgram program_;
};

}  // namespace

Result<RegexProgram> CompileRegex(const RegexNode& root) {
  Compiler compiler;
  return compiler.Compile(root);
}

std::string RegexProgram::ToString() const {
  std::string out;
  for (size_t i = 0; i < insts.size(); ++i) {
    const RegexInst& inst = insts[i];
    out += std::to_string(i);
    out += ": ";
    switch (inst.op) {
      case RegexInst::Op::kClass:
        out += "class " + classes[inst.class_id].ToString();
        break;
      case RegexInst::Op::kSplit:
        out += "split " + std::to_string(inst.x) + ", " + std::to_string(inst.y);
        break;
      case RegexInst::Op::kJmp:
        out += "jmp " + std::to_string(inst.x);
        break;
      case RegexInst::Op::kAssert:
        switch (inst.anchor) {
          case AnchorKind::kTextBegin: out += "assert ^"; break;
          case AnchorKind::kTextEnd: out += "assert $"; break;
          case AnchorKind::kWordBoundary: out += "assert \\b"; break;
          case AnchorKind::kNotWordBoundary: out += "assert \\B"; break;
        }
        break;
      case RegexInst::Op::kMatch:
        out += "match";
        break;
    }
    out += "\n";
  }
  return out;
}

}  // namespace webrbd
