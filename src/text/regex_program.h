// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Compiled form of a regex: a Thompson NFA rendered as a small bytecode
// program executed by the Pike VM in regex_vm.{h,cc}.

#ifndef WEBRBD_TEXT_REGEX_PROGRAM_H_
#define WEBRBD_TEXT_REGEX_PROGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "text/char_class.h"
#include "text/regex_ast.h"

namespace webrbd {

/// One NFA instruction.
struct RegexInst {
  enum class Op : uint8_t {
    kClass,   ///< consume one byte in classes[class_id]; fall through
    kSplit,   ///< fork to x (preferred) and y
    kJmp,     ///< jump to x
    kAssert,  ///< zero-width check of `anchor`; fall through on success
    kMatch,   ///< accept
  };

  Op op = Op::kMatch;
  int x = 0;         // kSplit / kJmp target
  int y = 0;         // kSplit alternative target
  int class_id = 0;  // kClass
  AnchorKind anchor = AnchorKind::kTextBegin;  // kAssert
};

/// A compiled program plus its character-class table.
struct RegexProgram {
  std::vector<RegexInst> insts;
  std::vector<CharClass> classes;

  /// True when the pattern can only match starting at text begin (leading ^),
  /// which lets the VM skip the scan loop.
  bool anchored_at_start = false;

  /// Backstop on the VM's per-call epsilon-closure expansion, in
  /// instructions (0 = unbounded). Closure work is already bounded by
  /// program size via generation marking; a budget smaller than the
  /// program makes matching conservative (threads beyond the budget are
  /// dropped — matches can be missed, never miscounted as crashes). Set
  /// from RegexOptions::closure_budget at compile time.
  size_t closure_budget = 0;

  /// Human-readable disassembly for debugging and tests.
  std::string ToString() const;
};

}  // namespace webrbd

#endif  // WEBRBD_TEXT_REGEX_PROGRAM_H_
