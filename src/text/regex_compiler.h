// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#ifndef WEBRBD_TEXT_REGEX_COMPILER_H_
#define WEBRBD_TEXT_REGEX_COMPILER_H_

#include "text/regex_ast.h"
#include "text/regex_program.h"
#include "util/result.h"

namespace webrbd {

/// Compiles an AST into an NFA program (classic Thompson construction;
/// bounded repetition is expanded by cloning).
[[nodiscard]] Result<RegexProgram> CompileRegex(const RegexNode& root);

}  // namespace webrbd

#endif  // WEBRBD_TEXT_REGEX_COMPILER_H_
