// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "text/regex_ast.h"

namespace webrbd {

std::unique_ptr<RegexNode> RegexNode::Clone() const {
  auto copy = std::make_unique<RegexNode>();
  copy->kind = kind;
  copy->char_class = char_class;
  copy->min = min;
  copy->max = max;
  copy->anchor = anchor;
  copy->children.reserve(children.size());
  for (const auto& child : children) copy->children.push_back(child->Clone());
  return copy;
}

std::unique_ptr<RegexNode> MakeEmptyNode() {
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexNode::Kind::kEmpty;
  return node;
}

std::unique_ptr<RegexNode> MakeClassNode(CharClass cc) {
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexNode::Kind::kClass;
  node->char_class = std::move(cc);
  return node;
}

std::unique_ptr<RegexNode> MakeConcatNode(
    std::vector<std::unique_ptr<RegexNode>> children) {
  if (children.empty()) return MakeEmptyNode();
  if (children.size() == 1) return std::move(children[0]);
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexNode::Kind::kConcat;
  node->children = std::move(children);
  return node;
}

std::unique_ptr<RegexNode> MakeAlternateNode(
    std::vector<std::unique_ptr<RegexNode>> children) {
  if (children.empty()) return MakeEmptyNode();
  if (children.size() == 1) return std::move(children[0]);
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexNode::Kind::kAlternate;
  node->children = std::move(children);
  return node;
}

std::unique_ptr<RegexNode> MakeRepeatNode(std::unique_ptr<RegexNode> child,
                                          int min, int max) {
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexNode::Kind::kRepeat;
  node->children.push_back(std::move(child));
  node->min = min;
  node->max = max;
  return node;
}

std::unique_ptr<RegexNode> MakeAnchorNode(AnchorKind anchor) {
  auto node = std::make_unique<RegexNode>();
  node->kind = RegexNode::Kind::kAnchor;
  node->anchor = anchor;
  return node;
}

}  // namespace webrbd
