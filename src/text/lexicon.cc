// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "text/lexicon.h"

#include <algorithm>

#include "util/string_util.h"

namespace webrbd {

namespace {

// A lexicon "word" is a maximal run of alphanumerics plus the punctuation
// that occurs inside real-world terms: apostrophes ("O'Brien"), hyphens
// ("F-150"), pluses ("C++"), slashes ("TCP/IP", "AS/400"), and hashes.
bool IsWordChar(char c) {
  return IsAsciiAlnum(c) || c == '\'' || c == '-' || c == '+' || c == '/' ||
         c == '#';
}

struct TokenSpan {
  size_t begin;
  size_t end;
  std::string lower;
};

std::vector<TokenSpan> TokenizeWords(std::string_view text) {
  std::vector<TokenSpan> tokens;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && !IsWordChar(text[i])) ++i;
    size_t start = i;
    while (i < text.size() && IsWordChar(text[i])) ++i;
    if (i > start) {
      tokens.push_back(
          TokenSpan{start, i, AsciiToLower(text.substr(start, i - start))});
    }
  }
  return tokens;
}

}  // namespace

Lexicon::Lexicon(const std::vector<std::string>& entries) {
  for (const std::string& entry : entries) Add(entry);
}

void Lexicon::Add(std::string_view entry) {
  std::vector<std::string> raw_words = SplitWhitespace(entry);
  if (raw_words.empty()) return;
  Phrase phrase;
  phrase.words.reserve(raw_words.size());
  for (const std::string& w : raw_words) {
    phrase.words.push_back(AsciiToLower(w));
  }
  phrase.canonical = Join(phrase.words, " ");

  std::vector<Phrase>& bucket = by_first_word_[phrase.words[0]];
  for (const Phrase& existing : bucket) {
    if (existing.canonical == phrase.canonical) return;  // duplicate
  }
  bucket.push_back(std::move(phrase));
  // Longest phrases first so FindAll prefers "salt lake city" over "salt".
  std::sort(bucket.begin(), bucket.end(),
            [](const Phrase& a, const Phrase& b) {
              return a.words.size() > b.words.size();
            });
  ++entry_count_;
}

bool Lexicon::Contains(std::string_view entry) const {
  std::vector<std::string> words = SplitWhitespace(AsciiToLower(entry));
  if (words.empty()) return false;
  auto it = by_first_word_.find(words[0]);
  if (it == by_first_word_.end()) return false;
  std::string canonical = Join(words, " ");
  for (const Phrase& phrase : it->second) {
    if (phrase.canonical == canonical) return true;
  }
  return false;
}

std::vector<LexiconMatch> Lexicon::FindAll(std::string_view text) const {
  std::vector<LexiconMatch> matches;
  std::vector<TokenSpan> tokens = TokenizeWords(text);
  size_t i = 0;
  while (i < tokens.size()) {
    auto it = by_first_word_.find(tokens[i].lower);
    bool matched = false;
    if (it != by_first_word_.end()) {
      for (const Phrase& phrase : it->second) {
        if (i + phrase.words.size() > tokens.size()) continue;
        bool all = true;
        for (size_t k = 1; k < phrase.words.size(); ++k) {
          if (tokens[i + k].lower != phrase.words[k]) {
            all = false;
            break;
          }
        }
        if (all) {
          matches.push_back(LexiconMatch{
              tokens[i].begin, tokens[i + phrase.words.size() - 1].end,
              phrase.canonical});
          i += phrase.words.size();
          matched = true;
          break;  // buckets are longest-first; first hit is the best hit
        }
      }
    }
    if (!matched) ++i;
  }
  return matches;
}

size_t Lexicon::CountMatches(std::string_view text) const {
  return FindAll(text).size();
}

}  // namespace webrbd
