// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "text/regex_parser.h"

#include <string>

#include "util/string_util.h"

namespace webrbd {

namespace {

// Keeps bounded repetition from exploding the compiled program.
constexpr int kMaxRepeatBound = 1000;

class Parser {
 public:
  Parser(std::string_view pattern, const RegexOptions& options)
      : pattern_(pattern), options_(options) {}

  Result<std::unique_ptr<RegexNode>> Parse() {
    auto node = ParseAlternation();
    if (!node.ok()) return node.status();
    if (!AtEnd()) {
      return Error("unbalanced ')'");
    }
    return node;
  }

 private:
  bool AtEnd() const { return pos_ >= pattern_.size(); }
  char Peek() const { return pattern_[pos_]; }
  char Take() { return pattern_[pos_++]; }
  bool TryTake(char c) {
    if (!AtEnd() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(std::string_view msg) const {
    std::string full = "regex parse error at offset ";
    full += std::to_string(pos_);
    full += " in \"";
    full += pattern_;
    full += "\": ";
    full += msg;
    return Status::ParseError(full);
  }

  Result<std::unique_ptr<RegexNode>> ParseAlternation() {
    std::vector<std::unique_ptr<RegexNode>> branches;
    for (;;) {
      auto branch = ParseConcat();
      if (!branch.ok()) return branch.status();
      branches.push_back(std::move(branch).value());
      if (!TryTake('|')) break;
    }
    return MakeAlternateNode(std::move(branches));
  }

  Result<std::unique_ptr<RegexNode>> ParseConcat() {
    std::vector<std::unique_ptr<RegexNode>> parts;
    while (!AtEnd() && Peek() != '|' && Peek() != ')') {
      auto part = ParseRepeat();
      if (!part.ok()) return part.status();
      parts.push_back(std::move(part).value());
    }
    return MakeConcatNode(std::move(parts));
  }

  Result<std::unique_ptr<RegexNode>> ParseRepeat() {
    auto atom_result = ParseAtom();
    if (!atom_result.ok()) return atom_result.status();
    std::unique_ptr<RegexNode> atom = std::move(atom_result).value();

    for (;;) {
      int min = 0;
      int max = -1;
      if (TryTake('*')) {
        min = 0;
        max = -1;
      } else if (TryTake('+')) {
        min = 1;
        max = -1;
      } else if (TryTake('?')) {
        min = 0;
        max = 1;
      } else if (!AtEnd() && Peek() == '{') {
        size_t save = pos_;
        ++pos_;
        if (!ParseBound(&min, &max)) {
          // Not a valid bound: treat '{' as a literal, per common practice.
          pos_ = save;
          break;
        }
      } else {
        break;
      }
      if (!AtEnd() && Peek() == '?') {
        return Error("non-greedy quantifiers are not supported");
      }
      if (atom->kind == RegexNode::Kind::kAnchor) {
        return Error("quantifier applied to an anchor");
      }
      atom = MakeRepeatNode(std::move(atom), min, max);
    }
    return atom;
  }

  // Parses the body of "{m}", "{m,}", or "{m,n}" after the '{'. Returns
  // false (without consuming definitively) when the text is not a bound.
  bool ParseBound(int* min, int* max) {
    int m = 0;
    bool any_digit = false;
    while (!AtEnd() && IsAsciiDigit(Peek())) {
      m = m * 10 + (Take() - '0');
      any_digit = true;
      if (m > kMaxRepeatBound) return false;
    }
    if (!any_digit) return false;
    int n = m;
    if (TryTake(',')) {
      if (TryTake('}')) {
        *min = m;
        *max = -1;
        return true;
      }
      n = 0;
      bool any = false;
      while (!AtEnd() && IsAsciiDigit(Peek())) {
        n = n * 10 + (Take() - '0');
        any = true;
        if (n > kMaxRepeatBound) return false;
      }
      if (!any || n < m) return false;
    }
    if (!TryTake('}')) return false;
    *min = m;
    *max = n;
    return true;
  }

  Result<std::unique_ptr<RegexNode>> ParseAtom() {
    if (AtEnd()) return Error("expected an atom");
    char c = Take();
    switch (c) {
      case '(': {
        // Accept both (...) and (?:...); captures are not reported either way.
        if (!AtEnd() && Peek() == '?') {
          ++pos_;
          if (!TryTake(':')) {
            return Error("only (?:...) groups are supported after '(?'");
          }
        }
        auto inner = ParseAlternation();
        if (!inner.ok()) return inner.status();
        if (!TryTake(')')) return Error("missing ')'");
        return inner;
      }
      case '[':
        return ParseClass();
      case '.': {
        return MakeClassNode(CharClass::AnyExceptNewline());
      }
      case '^':
        return MakeAnchorNode(AnchorKind::kTextBegin);
      case '$':
        return MakeAnchorNode(AnchorKind::kTextEnd);
      case '\\':
        return ParseEscape(/*in_class=*/false);
      case '*':
      case '+':
      case '?':
        return Error("quantifier with nothing to repeat");
      case ')':
        return Error("unexpected ')'");
      default:
        return MakeClassNode(LiteralClass(static_cast<unsigned char>(c)));
    }
  }

  CharClass LiteralClass(unsigned char c) const {
    CharClass cc = CharClass::Single(c);
    if (options_.case_insensitive) cc.FoldAsciiCase();
    return cc;
  }

  // Parses an escape sequence (the '\\' is already consumed). When
  // `in_class`, anchors are invalid and the result must be a CharClass.
  Result<std::unique_ptr<RegexNode>> ParseEscape(bool in_class) {
    if (AtEnd()) return Error("dangling backslash");
    char c = Take();
    switch (c) {
      case 'd':
        return MakeClassNode(CharClass::Digits());
      case 'D': {
        CharClass cc = CharClass::Digits();
        cc.Negate();
        return MakeClassNode(std::move(cc));
      }
      case 'w':
        return MakeClassNode(CharClass::WordChars());
      case 'W': {
        CharClass cc = CharClass::WordChars();
        cc.Negate();
        return MakeClassNode(std::move(cc));
      }
      case 's':
        return MakeClassNode(CharClass::Whitespace());
      case 'S': {
        CharClass cc = CharClass::Whitespace();
        cc.Negate();
        return MakeClassNode(std::move(cc));
      }
      case 'b':
        if (in_class) return Error("\\b is invalid inside a class");
        return MakeAnchorNode(AnchorKind::kWordBoundary);
      case 'B':
        if (in_class) return Error("\\B is invalid inside a class");
        return MakeAnchorNode(AnchorKind::kNotWordBoundary);
      case 'n':
        return MakeClassNode(LiteralClass('\n'));
      case 't':
        return MakeClassNode(LiteralClass('\t'));
      case 'r':
        return MakeClassNode(LiteralClass('\r'));
      case 'f':
        return MakeClassNode(LiteralClass('\f'));
      case 'v':
        return MakeClassNode(LiteralClass('\v'));
      case '0':
        return MakeClassNode(CharClass::Single('\0'));
      default:
        if (IsAsciiAlnum(c)) {
          return Error("unsupported escape");
        }
        // Escaped punctuation matches itself.
        return MakeClassNode(LiteralClass(static_cast<unsigned char>(c)));
    }
  }

  // Parses a [...] class; the '[' is already consumed.
  Result<std::unique_ptr<RegexNode>> ParseClass() {
    CharClass cc;
    bool negated = TryTake('^');
    bool first = true;
    for (;;) {
      if (AtEnd()) return Error("missing ']'");
      char c = Peek();
      if (c == ']' && !first) {
        ++pos_;
        break;
      }
      first = false;
      CharClass piece;
      bool piece_is_single = false;
      unsigned char single_value = 0;
      if (c == '\\') {
        ++pos_;
        auto escaped = ParseEscape(/*in_class=*/true);
        if (!escaped.ok()) return escaped.status();
        piece = (*escaped)->char_class;
        if (piece.ranges().size() == 1 &&
            piece.ranges()[0].first == piece.ranges()[0].second) {
          piece_is_single = true;
          single_value = piece.ranges()[0].first;
        }
      } else {
        ++pos_;
        piece_is_single = true;
        single_value = static_cast<unsigned char>(c);
        piece = CharClass::Single(single_value);
      }

      // Range: only valid when both ends are single characters.
      if (piece_is_single && !AtEnd() && Peek() == '-' && pos_ + 1 < pattern_.size() &&
          pattern_[pos_ + 1] != ']') {
        ++pos_;  // consume '-'
        char hi_char = Take();
        unsigned char hi;
        if (hi_char == '\\') {
          auto escaped = ParseEscape(/*in_class=*/true);
          if (!escaped.ok()) return escaped.status();
          const auto& r = (*escaped)->char_class.ranges();
          if (r.size() != 1 || r[0].first != r[0].second) {
            return Error("invalid range end in class");
          }
          hi = r[0].first;
        } else {
          hi = static_cast<unsigned char>(hi_char);
        }
        if (hi < single_value) return Error("reversed range in class");
        cc.Add(single_value, hi);
      } else {
        cc.AddClass(piece);
      }
    }
    // Fold case before negating so that e.g. case-insensitive [^a]
    // excludes both 'a' and 'A'.
    if (options_.case_insensitive) cc.FoldAsciiCase();
    if (negated) cc.Negate();
    if (cc.empty()) return Error("empty character class");
    return MakeClassNode(std::move(cc));
  }

  std::string_view pattern_;
  const RegexOptions& options_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<RegexNode>> ParseRegex(std::string_view pattern,
                                              const RegexOptions& options) {
  Parser parser(pattern, options);
  return parser.Parse();
}

}  // namespace webrbd
