// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "ontology/matching_rules.h"

#include "robust/limits.h"
#include "util/string_util.h"

namespace webrbd {

std::string KeywordPhraseToPattern(std::string_view phrase) {
  std::string pattern = "\\b";
  bool pending_gap = false;
  for (char c : phrase) {
    if (IsAsciiSpace(c)) {
      pending_gap = true;
      continue;
    }
    if (pending_gap) {
      pattern += "\\s+";
      pending_gap = false;
    }
    if (IsAsciiAlnum(c)) {
      pattern.push_back(c);
    } else {
      pattern.push_back('\\');
      pattern.push_back(c);
    }
  }
  pattern += "\\b";
  return pattern;
}

size_t CompiledObjectSetRule::CountKeywordMatches(std::string_view text) const {
  size_t count = 0;
  for (const Regex& regex : keyword_regexes) count += regex.CountMatches(text);
  return count;
}

size_t CompiledObjectSetRule::CountValueMatches(std::string_view text) const {
  size_t count = 0;
  for (const Regex& regex : value_regexes) count += regex.CountMatches(text);
  count += value_lexicon.CountMatches(text);
  return count;
}

Result<MatchingRuleSet> MatchingRuleSet::Compile(const Ontology& ontology) {
  MatchingRuleSet set;
  RegexOptions ci;
  ci.case_insensitive = true;
  // Ontology patterns are untrusted DSL input; give their VM runs the
  // production epsilon-closure backstop.
  ci.closure_budget =
      robust::DocumentLimits::Production().max_regex_closure_depth;
  for (const ObjectSet& object_set : ontology.object_sets()) {
    CompiledObjectSetRule rule;
    rule.object_set = object_set.name;
    rule.cardinality = object_set.cardinality;
    for (const std::string& keyword : object_set.frame.keywords) {
      auto regex = Regex::Compile(KeywordPhraseToPattern(keyword), ci);
      if (!regex.ok()) {
        return Status::ParseError("object set " + object_set.name +
                                  ", keyword '" + keyword +
                                  "': " + regex.status().message());
      }
      rule.keyword_regexes.push_back(std::move(regex).value());
    }
    for (const std::string& pattern : object_set.frame.value_patterns) {
      auto regex = Regex::Compile(pattern, ci);
      if (!regex.ok()) {
        return Status::ParseError("object set " + object_set.name +
                                  ", pattern '" + pattern +
                                  "': " + regex.status().message());
      }
      rule.value_regexes.push_back(std::move(regex).value());
    }
    rule.value_lexicon = Lexicon(object_set.frame.lexicon);
    set.rules_.push_back(std::move(rule));
  }
  return set;
}

const CompiledObjectSetRule* MatchingRuleSet::Find(
    const std::string& object_set) const {
  for (const CompiledObjectSetRule& rule : rules_) {
    if (rule.object_set == object_set) return &rule;
  }
  return nullptr;
}

}  // namespace webrbd
