// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "ontology/bundled.h"

#include "gen/corpora.h"
#include "ontology/parser.h"
#include "util/string_util.h"

namespace webrbd {

namespace {

// Renders a corpus list as one or more "  lexicon a, b, c" DSL lines.
std::string LexiconLines(const std::vector<std::string>& entries) {
  std::string out;
  std::string line;
  for (const std::string& entry : entries) {
    if (line.size() + entry.size() > 70 && !line.empty()) {
      out += "  lexicon " + line + "\n";
      line.clear();
    }
    if (!line.empty()) line += ", ";
    line += entry;
  }
  if (!line.empty()) out += "  lexicon " + line + "\n";
  return out;
}

std::string AllCarModels() {
  std::vector<std::string> models;
  for (const std::string& make : gen::CarMakes()) {
    for (const std::string& model : gen::ModelsOf(make)) {
      models.push_back(model);
    }
  }
  return LexiconLines(models);
}

std::string ObituaryDsl() {
  std::string dsl = R"(ontology Obituary
entity Deceased

objectset DeceasedName
  cardinality one-to-one
  type name
  pattern [A-Z][a-z]+ [A-Z]\. [A-Z][a-z]+
end

objectset DeathDate
  cardinality functional
  type date
  keyword died on
  keyword passed away on
  pattern (January|February|March|April|May|June|July|August|September|October|November|December) [0-9]{1,2}, [0-9]{4}
end

objectset BirthDate
  cardinality functional
  type date
  keyword was born
  pattern (January|February|March|April|May|June|July|August|September|October|November|December) [0-9]{1,2}, [0-9]{4}
end

objectset FuneralDate
  cardinality functional
  type date
  keyword funeral services
  keyword services will be conducted
  keyword graveside services
  pattern (January|February|March|April|May|June|July|August|September|October|November|December) [0-9]{1,2}, [0-9]{4}
end

objectset Age
  cardinality functional
  type number
  keyword age
  pattern \bage [0-9]{1,3}\b
end

objectset IntermentPlace
  cardinality functional
  type place
  keyword interment
  pattern \bin [A-Z][A-Za-z ]+(Cemetery|Memorial Park|Memorial Gardens)\b
end


objectset Mortuary
  cardinality functional
  type business
)";
  dsl += LexiconLines(gen::Mortuaries());
  dsl += R"(end

objectset SurvivorName
  cardinality many
  type name
  keyword survived by
end
)";
  return dsl;
}

std::string CarAdDsl() {
  std::string dsl = R"(ontology CarAd
entity Car

objectset Mileage
  cardinality functional
  type mileage
  keyword miles
  pattern \b[0-9][0-9,]*,000 miles\b
end

objectset Year
  cardinality functional
  type year
  pattern \b19[6-9][0-9]\b
end

objectset Make
  cardinality functional
  type make
)";
  dsl += LexiconLines(gen::CarMakes());
  dsl += R"(end

objectset Model
  cardinality functional
  type model
)";
  dsl += AllCarModels();
  dsl += R"(end

objectset Price
  cardinality functional
  type money
  pattern \$[0-9][0-9,]*
end

objectset PhoneNr
  cardinality functional
  type phone
  pattern \b[0-9]{3}-[0-9]{4}\b
end

objectset Color
  cardinality functional
  type color
)";
  dsl += LexiconLines(gen::CarColors());
  dsl += R"(end

objectset Feature
  cardinality many
  type feature
)";
  dsl += LexiconLines(gen::CarFeatures());
  dsl += "end\n";
  return dsl;
}

std::string JobAdDsl() {
  std::string dsl = R"(ontology ComputerJobAd
entity Job

objectset Experience
  cardinality functional
  type duration
  keyword years experience
  keyword years of experience
  pattern \b[0-9]{1,2} years experience\b
end

objectset Degree
  cardinality functional
  type degree
  keyword degree
  pattern \b(BS|MS|BA|technical) degree\b
end

objectset Salary
  cardinality functional
  type money
  keyword salary
  keyword per year
  pattern \$[0-9][0-9,]*\b
end

objectset JobTitle
  cardinality functional
  type title
)";
  dsl += LexiconLines(gen::JobTitles());
  dsl += R"(end

objectset Company
  cardinality functional
  type company
  pattern [A-Z][A-Za-z]+ (Systems|Technologies|Consulting|Solutions|Software|Computing|Associates|Group|Corporation)
end

objectset ContactPhone
  cardinality functional
  type phone
  pattern \b[0-9]{3}-[0-9]{4}\b
end

objectset Skill
  cardinality many
  type skill
)";
  dsl += LexiconLines(gen::Skills());
  dsl += "end\n";
  return dsl;
}

std::string CourseDsl() {
  std::string dsl = R"(ontology UniversityCourse
entity Course

objectset Credits
  cardinality functional
  type number
  keyword credit hours
  keyword credits
  pattern \b[0-9] credit hours\b
end

objectset Instructor
  cardinality functional
  type name
  keyword instructor
  pattern \bInstructor: [A-Z][a-z]+\b
end

objectset Prerequisite
  cardinality functional
  type code
  keyword prerequisite
  pattern \b[A-Z]{2,5} [0-9]{3}\b
end

objectset Room
  cardinality functional
  type room
  keyword room
  pattern \bRoom [0-9]{3}\b
end

objectset CourseCode
  cardinality one-to-one
  type code
  pattern \b[A-Z]{2,5} [0-9]{3}\b
end

objectset MeetingTime
  cardinality functional
  type time
  pattern \b[0-9]{1,2}:[0-9]{2}\b
end

objectset Days
  cardinality functional
  type days
)";
  dsl += LexiconLines(gen::WeekdayPatterns());
  dsl += "end\n";
  return dsl;
}

}  // namespace

std::string DomainName(Domain domain) {
  switch (domain) {
    case Domain::kObituaries: return "obituaries";
    case Domain::kCarAds: return "car advertisements";
    case Domain::kJobAds: return "computer job advertisements";
    case Domain::kCourses: return "university course descriptions";
  }
  return "unknown";
}

std::string BundledOntologyDsl(Domain domain) {
  switch (domain) {
    case Domain::kObituaries: return ObituaryDsl();
    case Domain::kCarAds: return CarAdDsl();
    case Domain::kJobAds: return JobAdDsl();
    case Domain::kCourses: return CourseDsl();
  }
  return "";
}

Result<Ontology> BundledOntology(Domain domain) {
  return ParseOntology(BundledOntologyDsl(domain));
}

}  // namespace webrbd
