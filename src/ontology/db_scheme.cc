// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "ontology/db_scheme.h"

namespace webrbd {

DatabaseScheme GenerateDatabaseScheme(const Ontology& ontology) {
  DatabaseScheme scheme;

  std::vector<db::Column> entity_columns;
  entity_columns.push_back(
      db::Column{"id", db::ValueType::kInt64, /*nullable=*/false});
  for (const ObjectSet& object_set : ontology.object_sets()) {
    switch (object_set.cardinality) {
      case Cardinality::kOneToOne:
      case Cardinality::kFunctional:
        entity_columns.push_back(db::Column{object_set.name,
                                            db::ValueType::kString,
                                            /*nullable=*/true});
        break;
      case Cardinality::kMany: {
        std::vector<db::Column> columns = {
            db::Column{"entity_id", db::ValueType::kInt64, false},
            db::Column{"value", db::ValueType::kString, false},
        };
        scheme.multivalue_tables.emplace_back(
            ontology.entity_name() + "_" + object_set.name,
            std::move(columns));
        break;
      }
    }
  }
  scheme.entity_table =
      db::Schema(ontology.entity_name(), std::move(entity_columns));
  return scheme;
}

Result<db::Catalog> DatabaseScheme::CreateCatalog() const {
  db::Catalog catalog;
  auto created = catalog.CreateTable(entity_table);
  if (!created.ok()) return created.status();
  for (const db::Schema& schema : multivalue_tables) {
    auto table = catalog.CreateTable(schema);
    if (!table.ok()) return table.status();
  }
  return catalog;
}

std::vector<const db::Schema*> DatabaseScheme::AllSchemas() const {
  std::vector<const db::Schema*> all = {&entity_table};
  for (const db::Schema& schema : multivalue_tables) all.push_back(&schema);
  return all;
}

}  // namespace webrbd
