// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "ontology/estimator.h"

namespace webrbd {

Result<std::shared_ptr<OntologyRecordCountEstimator>>
OntologyRecordCountEstimator::Create(const Ontology& ontology) {
  auto compiled = MatchingRuleSet::Compile(ontology);
  if (!compiled.ok()) return compiled.status();

  std::shared_ptr<OntologyRecordCountEstimator> estimator(
      new OntologyRecordCountEstimator());
  estimator->rules_ = std::move(compiled).value();

  for (const ObjectSet* object_set : ontology.RecordIdentifyingFields()) {
    Field field;
    field.rule = estimator->rules_.Find(object_set->name);
    field.use_keywords = object_set->frame.HasKeywords();
    estimator->fields_.push_back(field);
    estimator->field_names_.push_back(object_set->name);
  }
  return estimator;
}

std::optional<double> OntologyRecordCountEstimator::EstimateRecordCount(
    std::string_view plain_text) const {
  if (fields_.size() < 3) return std::nullopt;  // paper: at least 3 fields
  double total = 0.0;
  for (const Field& field : fields_) {
    total += static_cast<double>(
        field.use_keywords ? field.rule->CountKeywordMatches(plain_text)
                           : field.rule->CountValueMatches(plain_text));
  }
  return total / static_cast<double>(fields_.size());
}

Result<std::shared_ptr<const RecordCountEstimator>> MakeEstimatorForOntology(
    const Ontology& ontology) {
  auto estimator = OntologyRecordCountEstimator::Create(ontology);
  if (!estimator.ok()) return estimator.status();
  return std::shared_ptr<const RecordCountEstimator>(std::move(estimator).value());
}

}  // namespace webrbd
