// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// The four application ontologies of the paper's experiments: obituaries,
// car advertisements, computer job advertisements, and university course
// descriptions (Sections 2 and 6). Each is authored in the ontology DSL
// (with lexicons drawn from src/gen/corpora.h, the same lists the synthetic
// document generator renders from) and parsed through ParseOntology, so the
// bundled ontologies exercise the full Figure 1 "Ontology Parser" path.

#ifndef WEBRBD_ONTOLOGY_BUNDLED_H_
#define WEBRBD_ONTOLOGY_BUNDLED_H_

#include "ontology/model.h"
#include "util/result.h"

namespace webrbd {

/// The paper's four application areas.
enum class Domain {
  kObituaries,
  kCarAds,
  kJobAds,
  kCourses,
};

/// All domains, in the paper's presentation order.
inline constexpr Domain kAllDomains[] = {Domain::kObituaries, Domain::kCarAds,
                                         Domain::kJobAds, Domain::kCourses};

/// Human-readable domain name ("obituaries", ...).
std::string DomainName(Domain domain);

/// DSL source of the bundled ontology for `domain`.
std::string BundledOntologyDsl(Domain domain);

/// Parses and returns the bundled ontology for `domain`.
[[nodiscard]] Result<Ontology> BundledOntology(Domain domain);

}  // namespace webrbd

#endif  // WEBRBD_ONTOLOGY_BUNDLED_H_
