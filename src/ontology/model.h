// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// The application ontology of the paper's Figure 1: a small conceptual
// model (object sets related to an entity of interest, with cardinality
// constraints) augmented with data frames — constants, keywords, and
// lexicons that let recognizers spot field values in plain text.
//
// Ontologies are "narrow in breadth" (a few dozen object sets at most) and
// the target documents "rich in data" (Section 2); the model below captures
// exactly the information the OM heuristic and the downstream extraction
// pipeline consume.

#ifndef WEBRBD_ONTOLOGY_MODEL_H_
#define WEBRBD_ONTOLOGY_MODEL_H_

#include <string>
#include <vector>

#include "util/result.h"

namespace webrbd {

/// How many values of an object set one entity instance has.
enum class Cardinality {
  kOneToOne,    ///< exactly one per entity (1:1 correspondence)
  kFunctional,  ///< at most one per entity (functionally dependent)
  kMany,        ///< zero or more per entity
};

/// Data frame: the recognizable surface forms of an object set's values.
struct DataFrame {
  /// Regexes matching constant values (compiled case-insensitively).
  std::vector<std::string> value_patterns;

  /// Keyword phrases indicating the field's presence ("died on",
  /// "asking price"). Matched case-insensitively on word boundaries.
  std::vector<std::string> keywords;

  /// Closed-world value list (makes, model names, month names, ...).
  std::vector<std::string> lexicon;

  /// Value type tag ("date", "money", "name", ...). Object sets sharing a
  /// type are excluded from value-based record identification (Section 4.5:
  /// a date matcher cannot tell death dates from funeral dates).
  std::string value_type;

  bool HasKeywords() const { return !keywords.empty(); }
  bool HasValueRecognizers() const {
    return !value_patterns.empty() || !lexicon.empty();
  }
};

/// One object set and its relationship to the entity of interest.
struct ObjectSet {
  std::string name;

  /// Cardinality of the relationship entity -> this object set.
  Cardinality cardinality = Cardinality::kMany;

  DataFrame frame;
};

/// A complete application ontology.
class Ontology {
 public:
  Ontology() = default;
  Ontology(std::string name, std::string entity_name,
           std::vector<ObjectSet> object_sets)
      : name_(std::move(name)),
        entity_name_(std::move(entity_name)),
        object_sets_(std::move(object_sets)) {}

  const std::string& name() const { return name_; }

  /// The entity of interest (e.g. "Deceased", "Car").
  const std::string& entity_name() const { return entity_name_; }

  const std::vector<ObjectSet>& object_sets() const { return object_sets_; }

  /// Lookup by name; nullptr when absent.
  const ObjectSet* Find(const std::string& name) const;

  /// Section 4.5's record-identifying field selection: object sets in
  /// one-to-one correspondence with the entity first, then functionally
  /// dependent ones; within each group keyword-indicated fields precede
  /// value-identified ones, and value-identified fields whose value type is
  /// shared with another object set are skipped. The list is capped at
  /// max(3, 20% of the object-set count); when fewer than `min_fields`
  /// qualify the result is empty (OM must abstain).
  std::vector<const ObjectSet*> RecordIdentifyingFields(
      int min_fields = 3) const;

  /// Structural sanity checks: non-empty names, unique object sets, every
  /// object set recognizable by keyword, pattern, or lexicon.
  [[nodiscard]] Status Validate() const;

 private:
  std::string name_;
  std::string entity_name_;
  std::vector<ObjectSet> object_sets_;
};

/// Human-readable cardinality name.
std::string CardinalityName(Cardinality cardinality);

}  // namespace webrbd

#endif  // WEBRBD_ONTOLOGY_MODEL_H_
