// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#ifndef WEBRBD_ONTOLOGY_ESTIMATOR_H_
#define WEBRBD_ONTOLOGY_ESTIMATOR_H_

#include <memory>

#include "core/om_heuristic.h"
#include "ontology/matching_rules.h"
#include "ontology/model.h"

namespace webrbd {

/// Production RecordCountEstimator backing the OM heuristic (Section 4.5):
/// counts indications of each record-identifying field in the plain text
/// and averages the counts into a record-count estimate.
class OntologyRecordCountEstimator : public RecordCountEstimator {
 public:
  /// Fails when the ontology's data frames do not compile.
  [[nodiscard]] static Result<std::shared_ptr<OntologyRecordCountEstimator>> Create(
      const Ontology& ontology);

  std::optional<double> EstimateRecordCount(
      std::string_view plain_text) const override;

  /// The record-identifying object-set names actually used, best first.
  const std::vector<std::string>& field_names() const { return field_names_; }

 private:
  OntologyRecordCountEstimator() = default;

  // For each field: prefer keyword counts (the paper's "indication that the
  // value exists"); fall back to constant-value counts.
  struct Field {
    const CompiledObjectSetRule* rule;
    bool use_keywords;
  };

  MatchingRuleSet rules_;
  std::vector<Field> fields_;
  std::vector<std::string> field_names_;
};

/// Convenience: builds the estimator and wires it into DiscoveryOptions-
/// compatible form. Returns nullptr (OM abstains) when the ontology has too
/// few record-identifying fields.
[[nodiscard]] Result<std::shared_ptr<const RecordCountEstimator>> MakeEstimatorForOntology(
    const Ontology& ontology);

}  // namespace webrbd

#endif  // WEBRBD_ONTOLOGY_ESTIMATOR_H_
