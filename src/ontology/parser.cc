// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "ontology/parser.h"

#include <string>
#include <vector>

#include "util/string_util.h"

namespace webrbd {

namespace {

// Splits a line into (directive, argument). The argument is everything
// after the first whitespace run, trimmed.
std::pair<std::string, std::string> SplitDirective(std::string_view line) {
  size_t i = 0;
  while (i < line.size() && !IsAsciiSpace(line[i])) ++i;
  std::string directive(line.substr(0, i));
  while (i < line.size() && IsAsciiSpace(line[i])) ++i;
  return {std::move(directive), std::string(StripAsciiWhitespace(line.substr(i)))};
}

Status ErrorAt(size_t line_number, std::string_view msg) {
  return Status::ParseError("ontology DSL line " +
                            std::to_string(line_number) + ": " +
                            std::string(msg));
}

}  // namespace

Result<Ontology> ParseOntology(std::string_view text) {
  std::string name;
  std::string entity;
  std::vector<ObjectSet> object_sets;
  ObjectSet current;
  bool in_objectset = false;

  const std::vector<std::string> lines = Split(text, '\n');
  for (size_t n = 0; n < lines.size(); ++n) {
    const size_t line_number = n + 1;
    std::string_view line = lines[n];
    // Strip comments ('#' outside of nothing special; patterns rarely need
    // a literal '#'; escape as [#] if they do).
    size_t hash = line.find('#');
    if (hash != std::string_view::npos) line = line.substr(0, hash);
    line = StripAsciiWhitespace(line);
    if (line.empty()) continue;

    auto [directive, argument] = SplitDirective(line);

    if (directive == "ontology") {
      if (in_objectset) return ErrorAt(line_number, "'ontology' inside objectset");
      if (!name.empty()) return ErrorAt(line_number, "duplicate 'ontology'");
      if (argument.empty()) return ErrorAt(line_number, "'ontology' needs a name");
      name = argument;
    } else if (directive == "entity") {
      if (in_objectset) return ErrorAt(line_number, "'entity' inside objectset");
      if (!entity.empty()) return ErrorAt(line_number, "duplicate 'entity'");
      if (argument.empty()) return ErrorAt(line_number, "'entity' needs a name");
      entity = argument;
    } else if (directive == "objectset") {
      if (in_objectset) {
        return ErrorAt(line_number, "missing 'end' before new objectset");
      }
      if (argument.empty()) {
        return ErrorAt(line_number, "'objectset' needs a name");
      }
      current = ObjectSet();
      current.name = argument;
      in_objectset = true;
    } else if (directive == "end") {
      if (!in_objectset) return ErrorAt(line_number, "'end' outside objectset");
      object_sets.push_back(std::move(current));
      in_objectset = false;
    } else if (directive == "cardinality") {
      if (!in_objectset) {
        return ErrorAt(line_number, "'cardinality' outside objectset");
      }
      if (argument == "one-to-one") {
        current.cardinality = Cardinality::kOneToOne;
      } else if (argument == "functional") {
        current.cardinality = Cardinality::kFunctional;
      } else if (argument == "many") {
        current.cardinality = Cardinality::kMany;
      } else {
        return ErrorAt(line_number,
                       "unknown cardinality '" + argument +
                           "' (expected one-to-one, functional, or many)");
      }
    } else if (directive == "type") {
      if (!in_objectset) return ErrorAt(line_number, "'type' outside objectset");
      current.frame.value_type = argument;
    } else if (directive == "keyword") {
      if (!in_objectset) {
        return ErrorAt(line_number, "'keyword' outside objectset");
      }
      if (argument.empty()) return ErrorAt(line_number, "empty keyword");
      current.frame.keywords.push_back(argument);
    } else if (directive == "pattern") {
      if (!in_objectset) {
        return ErrorAt(line_number, "'pattern' outside objectset");
      }
      if (argument.empty()) return ErrorAt(line_number, "empty pattern");
      current.frame.value_patterns.push_back(argument);
    } else if (directive == "lexicon") {
      if (!in_objectset) {
        return ErrorAt(line_number, "'lexicon' outside objectset");
      }
      for (const std::string& raw : Split(argument, ',')) {
        std::string entry(StripAsciiWhitespace(raw));
        if (!entry.empty()) current.frame.lexicon.push_back(std::move(entry));
      }
    } else {
      return ErrorAt(line_number, "unknown directive '" + directive + "'");
    }
  }
  if (in_objectset) {
    return ErrorAt(lines.size(), "unterminated objectset " + current.name);
  }

  Ontology ontology(std::move(name), std::move(entity), std::move(object_sets));
  WEBRBD_RETURN_IF_ERROR(ontology.Validate());
  return ontology;
}

std::string OntologyToDsl(const Ontology& ontology) {
  std::string out = "ontology " + ontology.name() + "\n";
  out += "entity " + ontology.entity_name() + "\n";
  for (const ObjectSet& object_set : ontology.object_sets()) {
    out += "\nobjectset " + object_set.name + "\n";
    out += "  cardinality " + CardinalityName(object_set.cardinality) + "\n";
    if (!object_set.frame.value_type.empty()) {
      out += "  type " + object_set.frame.value_type + "\n";
    }
    for (const std::string& keyword : object_set.frame.keywords) {
      out += "  keyword " + keyword + "\n";
    }
    for (const std::string& pattern : object_set.frame.value_patterns) {
      out += "  pattern " + pattern + "\n";
    }
    for (const std::string& entry : object_set.frame.lexicon) {
      out += "  lexicon " + entry + "\n";
    }
    out += "end\n";
  }
  return out;
}

}  // namespace webrbd
