// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// The "Constant/Keyword Matching Rules" of Figure 1: each object set's data
// frame compiled to executable matchers (regexes + lexicons).

#ifndef WEBRBD_ONTOLOGY_MATCHING_RULES_H_
#define WEBRBD_ONTOLOGY_MATCHING_RULES_H_

#include <string>
#include <vector>

#include "ontology/model.h"
#include "text/lexicon.h"
#include "text/regex.h"
#include "util/result.h"

namespace webrbd {

/// What kind of evidence a match represents.
enum class MatchKind {
  kKeyword,   ///< a keyword phrase indicating the field's presence
  kConstant,  ///< an actual field value (pattern or lexicon hit)
};

/// Compiled matchers for one object set.
struct CompiledObjectSetRule {
  std::string object_set;
  Cardinality cardinality = Cardinality::kMany;

  std::vector<Regex> keyword_regexes;  ///< word-bounded, case-insensitive
  std::vector<Regex> value_regexes;    ///< case-insensitive
  Lexicon value_lexicon;

  /// Count of keyword occurrences in `text`.
  size_t CountKeywordMatches(std::string_view text) const;

  /// Count of constant-value occurrences in `text` (patterns + lexicon).
  size_t CountValueMatches(std::string_view text) const;
};

/// All compiled rules of an ontology.
class MatchingRuleSet {
 public:
  /// Compiles every data frame; fails on an invalid value pattern, naming
  /// the offending object set.
  [[nodiscard]] static Result<MatchingRuleSet> Compile(const Ontology& ontology);

  const std::vector<CompiledObjectSetRule>& rules() const { return rules_; }

  /// Rule for `object_set`, or nullptr.
  const CompiledObjectSetRule* Find(const std::string& object_set) const;

 private:
  std::vector<CompiledObjectSetRule> rules_;
};

/// Turns a keyword phrase into a word-bounded, whitespace-flexible,
/// case-insensitive regex source (e.g. "died on" ->
/// "\bdied\s+on\b"). Exposed for tests.
std::string KeywordPhraseToPattern(std::string_view phrase);

}  // namespace webrbd

#endif  // WEBRBD_ONTOLOGY_MATCHING_RULES_H_
