// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Parser for the ontology DSL — the textual form of the paper's
// "Application Ontology" input. The Ontology Parser of Figure 1 turns this
// into matching rules (ontology/matching_rules.h) and a database scheme
// (ontology/db_scheme.h).
//
// Format (line-oriented; '#' starts a comment):
//
//   ontology Obituary
//   entity Deceased
//
//   objectset DeathDate
//     cardinality functional        # one-to-one | functional | many
//     type date                     # optional value-type tag
//     keyword died on               # repeatable
//     keyword passed away on
//     pattern (Jan|Feb)[a-z]* \d{1,2}, \d{4}   # repeatable; regex to EOL
//     lexicon January, February     # repeatable; comma-separated entries
//   end

#ifndef WEBRBD_ONTOLOGY_PARSER_H_
#define WEBRBD_ONTOLOGY_PARSER_H_

#include <string_view>

#include "ontology/model.h"
#include "util/result.h"

namespace webrbd {

/// Parses the DSL text into a validated Ontology.
[[nodiscard]] Result<Ontology> ParseOntology(std::string_view text);

/// Renders an Ontology back to DSL text (round-trips through ParseOntology).
std::string OntologyToDsl(const Ontology& ontology);

}  // namespace webrbd

#endif  // WEBRBD_ONTOLOGY_PARSER_H_
