// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// The "Database Description" output of Figure 1's Ontology Parser: a
// relational scheme generated from the ontology's cardinality constraints.

#ifndef WEBRBD_ONTOLOGY_DB_SCHEME_H_
#define WEBRBD_ONTOLOGY_DB_SCHEME_H_

#include <vector>

#include "db/catalog.h"
#include "db/schema.h"
#include "ontology/model.h"

namespace webrbd {

/// The generated relational scheme:
///  - one entity table named after the entity of interest, with an `id`
///    key column plus one nullable STRING column per one-to-one /
///    functional object set (nullable because extraction may miss values);
///  - one auxiliary table per many-valued object set, with (entity_id,
///    value) columns.
struct DatabaseScheme {
  db::Schema entity_table;
  std::vector<db::Schema> multivalue_tables;

  /// Instantiates every table into a fresh catalog.
  [[nodiscard]] Result<db::Catalog> CreateCatalog() const;

  /// All schemas, entity table first.
  std::vector<const db::Schema*> AllSchemas() const;
};

/// Generates the scheme for `ontology`.
DatabaseScheme GenerateDatabaseScheme(const Ontology& ontology);

}  // namespace webrbd

#endif  // WEBRBD_ONTOLOGY_DB_SCHEME_H_
