// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "ontology/model.h"

#include <algorithm>
#include <map>
#include <set>

namespace webrbd {

const ObjectSet* Ontology::Find(const std::string& name) const {
  for (const ObjectSet& object_set : object_sets_) {
    if (object_set.name == name) return &object_set;
  }
  return nullptr;
}

std::vector<const ObjectSet*> Ontology::RecordIdentifyingFields(
    int min_fields) const {
  // Value types appearing in more than one object set cannot identify
  // records by value alone (Section 4.5's date example).
  std::map<std::string, int> type_usage;
  for (const ObjectSet& object_set : object_sets_) {
    if (!object_set.frame.value_type.empty()) {
      ++type_usage[object_set.frame.value_type];
    }
  }
  auto shared_type = [&](const ObjectSet& object_set) {
    if (object_set.frame.value_type.empty()) return false;
    return type_usage.at(object_set.frame.value_type) > 1;
  };

  // Order: (one-to-one before functional) x (keywords before values),
  // skipping value-identified fields of shared type.
  std::vector<const ObjectSet*> ordered;
  for (Cardinality group : {Cardinality::kOneToOne, Cardinality::kFunctional}) {
    for (bool want_keywords : {true, false}) {
      for (const ObjectSet& object_set : object_sets_) {
        if (object_set.cardinality != group) continue;
        if (object_set.frame.HasKeywords() != want_keywords) continue;
        if (!want_keywords) {
          if (!object_set.frame.HasValueRecognizers()) continue;
          if (shared_type(object_set)) continue;
        }
        ordered.push_back(&object_set);
      }
    }
  }

  // At least `min_fields`, no more than 20% of the object sets (but never
  // below min_fields — the paper wants a usable average).
  if (static_cast<int>(ordered.size()) < min_fields) return {};
  const int cap = std::max(
      min_fields,
      static_cast<int>(0.20 * static_cast<double>(object_sets_.size())));
  if (static_cast<int>(ordered.size()) > cap) {
    ordered.resize(static_cast<size_t>(cap));
  }
  return ordered;
}

Status Ontology::Validate() const {
  if (name_.empty()) {
    return Status::InvalidArgument("ontology name must not be empty");
  }
  if (entity_name_.empty()) {
    return Status::InvalidArgument("ontology entity must not be empty");
  }
  if (object_sets_.empty()) {
    return Status::InvalidArgument("ontology has no object sets");
  }
  std::set<std::string> seen;
  for (const ObjectSet& object_set : object_sets_) {
    if (object_set.name.empty()) {
      return Status::InvalidArgument("object set with empty name");
    }
    if (!seen.insert(object_set.name).second) {
      return Status::InvalidArgument("duplicate object set: " +
                                     object_set.name);
    }
    if (!object_set.frame.HasKeywords() &&
        !object_set.frame.HasValueRecognizers()) {
      return Status::InvalidArgument(
          "object set " + object_set.name +
          " has no keywords, patterns, or lexicon; it can never be matched");
    }
  }
  return Status::OK();
}

std::string CardinalityName(Cardinality cardinality) {
  switch (cardinality) {
    case Cardinality::kOneToOne: return "one-to-one";
    case Cardinality::kFunctional: return "functional";
    case Cardinality::kMany: return "many";
  }
  return "unknown";
}

}  // namespace webrbd
