// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "gen/template_skew.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "gen/corpora.h"
#include "util/rng.h"

namespace webrbd::gen {

namespace {

// The record-region archetype digit. Mirrors the SiteTemplate families but
// rendered with a FIXED per-record markup shape: every record of a
// template emits exactly the same tag sequence.
enum class SkewArchetype {
  kHrSeparated,
  kParagraphs,
  kTableRows,
  kHeadlined,
  kBrBlocks,
};

constexpr int kArchetypes = 5;
const char* const kEmphasisTags[] = {"b", "i", "em", "strong"};
constexpr int kEmphasisChoices = 4;
constexpr int kHeadingChoices = 3;  // h1 / h2 / h3
constexpr int kDepthChoices = 4;    // 0..3 wrapper <div> levels
const char* const kChromeTags[] = {"ul", "ol", "center"};
constexpr int kChromeChoices = 3;

// The structural knobs of template `id`, decoded mixed-radix so distinct
// ids below 720 yield distinct knob combinations (and therefore distinct
// distinct-tag-path sets: each digit changes a tag name or a path depth).
struct TemplateShape {
  SkewArchetype archetype;
  const char* emphasis_tag;
  int heading_level;       // 1..3
  int wrapper_depth;       // 0..3
  const char* chrome_tag;  // nav-list container
};

TemplateShape DecodeShape(int id) {
  TemplateShape shape;
  shape.archetype = static_cast<SkewArchetype>(id % kArchetypes);
  id /= kArchetypes;
  shape.emphasis_tag = kEmphasisTags[id % kEmphasisChoices];
  id /= kEmphasisChoices;
  shape.heading_level = 1 + (id % kHeadingChoices);
  id /= kHeadingChoices;
  shape.wrapper_depth = id % kDepthChoices;
  id /= kDepthChoices;
  shape.chrome_tag = kChromeTags[id % kChromeChoices];
  return shape;
}

std::string PersonName(Rng& rng) {
  return rng.Pick(FirstNames()) + " " + rng.Pick(LastNames());
}

// One record's inner markup: emphasized name, place, dateline, a detail
// link — the markup density of a real 1998 listing row. Identical tag
// sequence for every record of every page (content-only variation).
//
// The distinct-tag count is a tuned constant, not an accident. Candidate
// extraction (core/candidate_tags.cc) keeps a direct child of the record
// region only when it holds >= 10% of the subtree's start tags, so a
// record may carry at most nine distinct tags before they all drop below
// threshold and the document fails with "no candidate separator tags".
// Every archetype therefore renders records FLAT — separator-or-lead tag
// plus eight inline fields as direct region children, nine distinct
// candidates at ~11.1% each. A wrapped form (<p>record</p>,
// <tr><td>record</td></tr>) would instead leave the wrapper as the
// region's only candidate and most of the ranking work would vanish.
std::string RecordBody(const TemplateShape& shape, Rng& rng) {
  std::string body;
  body += "<";
  body += shape.emphasis_tag;
  body += ">";
  body += PersonName(rng);
  body += "</";
  body += shape.emphasis_tag;
  body += "> of <font size=2>";
  body += rng.Pick(Cities());
  body += "</font>, <small>";
  body += rng.Pick(MonthNames());
  body += " ";
  body += std::to_string(rng.RangeInclusive(1, 28));
  body += "</small> <tt>#";
  body += std::to_string(rng.RangeInclusive(1000, 9999));
  body += "</tt> <cite>";
  body += rng.Pick(LastNames());
  body += "</cite> <u>";
  body += rng.Pick(Cities());
  body += "</u> <code>";
  body += std::to_string(rng.RangeInclusive(10, 99));
  body += "</code> <a href=\"detail.html\">more</a>";
  return body;
}

void AppendRecords(const TemplateShape& shape, int record_count, Rng& rng,
                   std::string* html) {
  switch (shape.archetype) {
    case SkewArchetype::kHrSeparated:
      *html += "<table><tr><td>\n";
      for (int r = 0; r < record_count; ++r) {
        if (r > 0) *html += "<hr>\n";
        *html += RecordBody(shape, rng);
        *html += "\n";
      }
      *html += "</td></tr></table>\n";
      break;
    case SkewArchetype::kParagraphs:
      // Flat paragraph-lead form: a closed <p> lead line followed by the
      // record's inline fields as direct region children (the wrapped
      // <p>record</p> form would leave <p> as the region's only
      // candidate; the flat form keeps all nine in play).
      *html += "<div>\n";
      for (int r = 0; r < record_count; ++r) {
        *html += "<p>";
        *html += rng.Pick(Cities());
        *html += "</p>\n";
        *html += RecordBody(shape, rng);
        *html += "\n";
      }
      *html += "</div>\n";
      break;
    case SkewArchetype::kTableRows:
      // Flat cell-lead form inside one row: a closed <td> lead followed
      // by the record's inline fields as direct children of the <tr>
      // region (the wrapped <tr><td>record</td></tr> form would leave
      // <tr> as the region's only candidate).
      *html += "<table><tr>\n";
      for (int r = 0; r < record_count; ++r) {
        *html += "<td>";
        *html += rng.Pick(Cities());
        *html += "</td>";
        *html += RecordBody(shape, rng);
        *html += "\n";
      }
      *html += "</tr></table>\n";
      break;
    case SkewArchetype::kHeadlined:
      *html += "<div>\n";
      for (int r = 0; r < record_count; ++r) {
        *html += "<h4>";
        *html += PersonName(rng);
        *html += "</h4>\n";
        *html += RecordBody(shape, rng);
        *html += "\n";
      }
      *html += "</div>\n";
      break;
    case SkewArchetype::kBrBlocks:
      *html += "<div>\n";
      for (int r = 0; r < record_count; ++r) {
        *html += RecordBody(shape, rng);
        *html += "<br>\n";
      }
      *html += "</div>\n";
      break;
  }
}

std::string RenderSkewPage(int template_id, int page_index,
                           const TemplateSkewOptions& options) {
  const TemplateShape shape = DecodeShape(template_id);
  // Content stream: unique per (seed, template, page) so regenerating the
  // corpus never changes a page already generated.
  Rng rng(options.seed ^ StableHash64("template-skew-page"),
          (static_cast<uint64_t>(template_id) << 32) |
              static_cast<uint64_t>(page_index));

  std::string html;
  html += "<html><head><title>Listings page ";
  html += std::to_string(page_index);
  html += "</title></head>\n<body>\n";
  html += "<h" + std::to_string(shape.heading_level) + ">";
  html += rng.Pick(Cities());
  html += " Listings</h" + std::to_string(shape.heading_level) + ">\n";

  // Page chrome: a fixed-shape nav list (three links; link COUNT does not
  // change the distinct path set, but keeping it fixed keeps the page
  // chrome from competing with the record region for fan-out).
  html += "<";
  html += shape.chrome_tag;
  html += ">";
  for (int link = 0; link < 3; ++link) {
    html += "<li><a href=\"index.html\">";
    html += rng.Pick(MonthNames());
    html += "</a></li>";
  }
  html += "</";
  html += shape.chrome_tag;
  html += ">\n";

  for (int d = 0; d < shape.wrapper_depth; ++d) html += "<div>\n";
  const int record_count =
      rng.RangeInclusive(options.min_records, options.max_records);
  AppendRecords(shape, record_count, rng, &html);
  for (int d = 0; d < shape.wrapper_depth; ++d) html += "</div>\n";

  html += "</body></html>\n";
  return html;
}

}  // namespace

TemplateSkewCorpus GenerateTemplateSkewCorpus(
    const TemplateSkewOptions& options) {
  TemplateSkewCorpus corpus;
  if (options.num_templates <= 0 || options.num_pages <= 0) return corpus;

  // Zipf weights over template ranks: rank k gets 1 / (k + 1)^s.
  std::vector<double> cumulative(static_cast<size_t>(options.num_templates));
  double total = 0.0;
  for (int k = 0; k < options.num_templates; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), options.zipf_exponent);
    cumulative[static_cast<size_t>(k)] = total;
  }

  Rng assign(options.seed ^ StableHash64("template-skew-assign"));
  corpus.pages.reserve(static_cast<size_t>(options.num_pages));
  corpus.template_of_page.reserve(static_cast<size_t>(options.num_pages));
  corpus.pages_per_template.assign(
      static_cast<size_t>(options.num_templates), 0);
  for (int page = 0; page < options.num_pages; ++page) {
    const double draw = assign.NextDouble() * total;
    const auto it =
        std::upper_bound(cumulative.begin(), cumulative.end(), draw);
    const int template_id =
        std::min(static_cast<int>(it - cumulative.begin()),
                 options.num_templates - 1);
    corpus.template_of_page.push_back(template_id);
    ++corpus.pages_per_template[static_cast<size_t>(template_id)];
    corpus.pages.push_back(RenderSkewPage(template_id, page, options));
  }
  for (int count : corpus.pages_per_template) {
    if (count > 0) ++corpus.distinct_templates_used;
  }
  return corpus;
}

}  // namespace webrbd::gen
