// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Site registries mirroring the paper's experiment setup:
//  - Table 1: ten on-line newspapers used for the initial (calibration)
//    experiments — five obituary documents and five car-ad documents each,
//    100 documents total;
//  - Tables 6-9: four test sets of five fresh sites each, one document per
//    site (20 documents total), covering obituaries, car ads, computer job
//    ads, and university course descriptions.
//
// Each named site carries a fixed layout template; layouts are assigned so
// the synthetic corpus exhibits the failure modes the paper's Tables 2-4
// attribute to each heuristic (see DESIGN.md §1 and EXPERIMENTS.md).

#ifndef WEBRBD_GEN_SITES_H_
#define WEBRBD_GEN_SITES_H_

#include <vector>

#include "gen/site_template.h"

namespace webrbd::gen {

/// Documents per calibration site per domain (the paper retrieved five).
inline constexpr int kCalibrationDocsPerSite = 5;

/// The paper's Table 1 sites, with their layout templates.
const std::vector<SiteTemplate>& CalibrationSites();

/// The paper's Table 6/7/8/9 sites for the given domain.
const std::vector<SiteTemplate>& TestSites(Domain domain);

/// The full calibration corpus for one domain: every Table 1 site times
/// kCalibrationDocsPerSite documents (50 documents).
std::vector<GeneratedDocument> GenerateCalibrationCorpus(Domain domain);

/// The test corpus for one domain: one document per Table 6-9 site.
std::vector<GeneratedDocument> GenerateTestCorpus(Domain domain);

}  // namespace webrbd::gen

#endif  // WEBRBD_GEN_SITES_H_
