// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "gen/adversarial.h"

namespace webrbd::gen {

namespace {

std::string Repeat(std::string_view unit, size_t times) {
  std::string out;
  out.reserve(unit.size() * times);
  for (size_t i = 0; i < times; ++i) out.append(unit);
  return out;
}

std::string DepthBomb(size_t scale) {
  // `scale` properly nested and closed <div>s: the tree genuinely reaches
  // depth ~scale. (Unclosed tags would not do it: the paper's repair rule
  // ends an unclosed region just before the next tag, flattening the
  // nesting.) Trips max_tree_depth; in unlimited mode it exercises
  // iterative tree destruction and traversal.
  std::string doc = "<html><body>";
  doc += Repeat("<div>", scale);
  doc += "x";
  doc += Repeat("</div>", scale);
  doc += "</body></html>";
  return doc;
}

std::string TagStorm(size_t scale) {
  // A flat run of scale tiny elements: token volume with trivial nesting.
  std::string doc = "<html><body>";
  doc += Repeat("<b>x</b>", scale);
  doc += "</body></html>";
  return doc;
}

std::string StrayEndStorm(size_t scale) {
  // Half unclosed starts followed by half stray ends: every stray end
  // must be matched against a deep open stack (and discarded), and every
  // unclosed start needs a synthesized end placed past the discarded run —
  // the exact shape that made the old BalanceTokens quadratic.
  std::string doc = "<html><body>";
  doc += Repeat("<i>", scale / 2);
  doc += Repeat("</p>", scale - scale / 2);
  doc += "x";
  return doc;
}

std::string UnterminatedQuote(size_t scale) {
  // `scale` well-formed records followed by one whose attribute value is
  // missing its closing quote, with no later quote anywhere: the lexer's
  // bounded scan finds nothing and must take the unquoted-recovery path
  // instead of swallowing the rest of the page into one attribute.
  std::string doc = "<html><body>";
  doc += Repeat("<div class=\"r\">text</div>", scale);
  doc += "<div class=\"broken>final</div></body></html>";
  return doc;
}

std::string UnterminatedComment(size_t scale) {
  std::string doc = "<html><body><p>before</p><!-- never closed ";
  doc += Repeat("filler ", scale);
  return doc;
}

std::string UnterminatedRawText(size_t scale) {
  std::string doc = "<html><body><p>before</p><script>var x = 'no close';";
  doc += Repeat("x += 1;", scale);
  return doc;
}

std::string EntityFlood(size_t scale) {
  std::string doc = "<html><body><p>";
  doc += Repeat("&amp;&#65;&bogus;", scale);
  doc += "</p></body></html>";
  return doc;
}

std::string MegaAttribute(size_t scale) {
  // One properly quoted attribute value of ~scale bytes. Past the
  // attribute-value cap the lexer's bounded quote scan cannot see the
  // closing quote and takes the unquoted-recovery path, truncating.
  std::string doc = "<html><body><div data-blob=\"";
  doc += Repeat("x", scale);
  doc += "\"><p>text</p></div></body></html>";
  return doc;
}

std::string RawTextCloseStorm(size_t scale) {
  // A <script> body of `scale` near-miss closers. Every "</scrip" unit
  // starts a '<' candidate whose prefix matches the real "</script" closer
  // for seven bytes before differing, so a lexer that re-compares the full
  // closer at every '<' does O(needle) work per unit across the whole
  // body. The SWAR lexer's O(1) rejects (the '/' byte, then the byte after
  // the name) dispose of each candidate without a name compare.
  std::string doc = "<html><body><script>";
  doc += Repeat("</scrip", scale);
  doc += "</script><p>after</p></body></html>";
  return doc;
}

std::string DistinctTagStorm(size_t scale) {
  // `scale` elements, every one a never-before-seen tag name, with the
  // scale baked into each name so documents of different scales share no
  // names at all. Each tag interns a fresh symbol whose bytes land in the
  // interner's monotonic pool — the pool that deliberately survives
  // DocumentArena::Reset() — so this is the shape that grows a long-lived
  // batch worker's intern table without bound unless interner bytes are
  // charged against max_arena_bytes (html/tree_builder.cc). Extreme scales
  // also approach the 16-bit symbol cap (65534 distinct names).
  std::string doc = "<html><body>";
  const std::string prefix = "t" + std::to_string(scale) + "x";
  for (size_t i = 0; i < scale; ++i) {
    const std::string name = prefix + std::to_string(i);
    doc += "<" + name + ">x</" + name + ">";
  }
  doc += "</body></html>";
  return doc;
}

}  // namespace

const std::vector<AdversarialShape>& AllAdversarialShapes() {
  static const std::vector<AdversarialShape> shapes = {
      AdversarialShape::kDepthBomb,           AdversarialShape::kTagStorm,
      AdversarialShape::kStrayEndStorm,       AdversarialShape::kUnterminatedQuote,
      AdversarialShape::kUnterminatedComment, AdversarialShape::kUnterminatedRawText,
      AdversarialShape::kEntityFlood,         AdversarialShape::kMegaAttribute,
      AdversarialShape::kRawTextCloseStorm,   AdversarialShape::kDistinctTagStorm,
  };
  return shapes;
}

std::string_view AdversarialShapeName(AdversarialShape shape) {
  switch (shape) {
    case AdversarialShape::kDepthBomb:
      return "depth-bomb";
    case AdversarialShape::kTagStorm:
      return "tag-storm";
    case AdversarialShape::kStrayEndStorm:
      return "stray-end-storm";
    case AdversarialShape::kUnterminatedQuote:
      return "unterminated-quote";
    case AdversarialShape::kUnterminatedComment:
      return "unterminated-comment";
    case AdversarialShape::kUnterminatedRawText:
      return "unterminated-raw-text";
    case AdversarialShape::kEntityFlood:
      return "entity-flood";
    case AdversarialShape::kMegaAttribute:
      return "mega-attribute";
    case AdversarialShape::kRawTextCloseStorm:
      return "raw-text-close-storm";
    case AdversarialShape::kDistinctTagStorm:
      return "distinct-tag-storm";
  }
  return "unknown";
}

std::string RenderAdversarialDocument(AdversarialShape shape, size_t scale) {
  switch (shape) {
    case AdversarialShape::kDepthBomb:
      return DepthBomb(scale);
    case AdversarialShape::kTagStorm:
      return TagStorm(scale);
    case AdversarialShape::kStrayEndStorm:
      return StrayEndStorm(scale);
    case AdversarialShape::kUnterminatedQuote:
      return UnterminatedQuote(scale);
    case AdversarialShape::kUnterminatedComment:
      return UnterminatedComment(scale);
    case AdversarialShape::kUnterminatedRawText:
      return UnterminatedRawText(scale);
    case AdversarialShape::kEntityFlood:
      return EntityFlood(scale);
    case AdversarialShape::kMegaAttribute:
      return MegaAttribute(scale);
    case AdversarialShape::kRawTextCloseStorm:
      return RawTextCloseStorm(scale);
    case AdversarialShape::kDistinctTagStorm:
      return DistinctTagStorm(scale);
  }
  return {};
}

std::vector<std::string> AdversarialCorpus(size_t count) {
  // Scales against the *production* caps: the depth bomb trips
  // max_tree_depth (2048 > 512); the storms stay under the fatal caps but
  // stress the balancer; the malformed shapes exercise lexer recovery; the
  // mega attribute overruns max_attribute_value_bytes (128 KiB > 64 KiB).
  auto default_scale = [](AdversarialShape shape) -> size_t {
    switch (shape) {
      case AdversarialShape::kDepthBomb:
        return 2048;
      case AdversarialShape::kTagStorm:
      case AdversarialShape::kStrayEndStorm:
        return 20000;
      case AdversarialShape::kUnterminatedQuote:
        return 64;
      case AdversarialShape::kUnterminatedComment:
      case AdversarialShape::kUnterminatedRawText:
        return 2000;
      case AdversarialShape::kEntityFlood:
        return 5000;
      case AdversarialShape::kMegaAttribute:
        return 128 << 10;
      case AdversarialShape::kRawTextCloseStorm:
        return 20000;
      case AdversarialShape::kDistinctTagStorm:
        // Well under the 65534-symbol cap and a tiny slice of the
        // production arena budget: under production limits this document
        // extracts (degraded-but-fine); the interner-budget trip is pinned
        // by the regression test with a small max_arena_bytes.
        return 8000;
    }
    return 1000;
  };
  const std::vector<AdversarialShape>& shapes = AllAdversarialShapes();
  std::vector<std::string> corpus;
  corpus.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    AdversarialShape shape = shapes[i % shapes.size()];
    corpus.push_back(RenderAdversarialDocument(shape, default_scale(shape)));
  }
  return corpus;
}

}  // namespace webrbd::gen
