// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "gen/corpora.h"

#include <map>

namespace webrbd::gen {

namespace {
// Each accessor returns a function-local static so initialization order is
// never an issue for tests or static registration.
}  // namespace

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string> kNames = {
      "James",   "Mary",      "Robert",  "Patricia", "John",    "Jennifer",
      "Michael", "Linda",     "David",   "Elizabeth", "William", "Barbara",
      "Richard", "Susan",     "Joseph",  "Jessica",  "Thomas",  "Sarah",
      "Charles", "Karen",     "Christopher", "Nancy", "Daniel", "Lisa",
      "Matthew", "Margaret",  "Anthony", "Betty",    "Donald",  "Sandra",
      "Mark",    "Ashley",    "Paul",    "Dorothy",  "Steven",  "Kimberly",
      "Andrew",  "Emily",     "Kenneth", "Donna",    "George",  "Michelle",
      "Joshua",  "Carol",     "Kevin",   "Amanda",   "Brian",   "Melissa",
      "Edward",  "Deborah",   "Ronald",  "Stephanie", "Timothy", "Rebecca",
      "Jason",   "Laura",     "Jeffrey", "Helen",    "Ryan",    "Sharon",
      "Gary",    "Cynthia",   "Nicholas", "Kathleen", "Eric",   "Amy",
      "Stephen", "Angela",    "Jacob",   "Shirley",  "Larry",   "Anna",
      "Frank",   "Ruth",      "Scott",   "Brenda",   "Justin",  "Pamela",
      "Brandon", "Nicole",    "Raymond", "Katherine", "Gregory", "Virginia",
      "Samuel",  "Catherine", "Benjamin", "Christine", "Patrick", "Debra",
      "Jack",    "Rachel",    "Dennis",  "Janet",    "Jerry",   "Emma",
      "Alexander", "Carolyn", "Tyler",   "Maria",    "Henry",   "Heather",
      "Douglas", "Diane",     "Peter",   "Julie",    "Walter",  "Joyce",
      "Arthur",  "Evelyn",    "Harold",  "Joan",     "Lemar",   "Alvena",
      "Leonard", "Mae",       "Brian",   "Ruth",     "Karl",    "Anne",
  };
  return kNames;
}

const std::vector<std::string>& LastNames() {
  static const std::vector<std::string> kNames = {
      "Smith",    "Johnson",  "Williams", "Brown",    "Jones",    "Garcia",
      "Miller",   "Davis",    "Rodriguez", "Martinez", "Hernandez", "Lopez",
      "Gonzalez", "Wilson",   "Anderson", "Thomas",   "Taylor",   "Moore",
      "Jackson",  "Martin",   "Lee",      "Perez",    "Thompson", "White",
      "Harris",   "Sanchez",  "Clark",    "Ramirez",  "Lewis",    "Robinson",
      "Walker",   "Young",    "Allen",    "King",     "Wright",   "Scott",
      "Torres",   "Nguyen",   "Hill",     "Flores",   "Green",    "Adams",
      "Nelson",   "Baker",    "Hall",     "Rivera",   "Campbell", "Mitchell",
      "Carter",   "Roberts",  "Gomez",    "Phillips", "Evans",    "Turner",
      "Diaz",     "Parker",   "Cruz",     "Edwards",  "Collins",  "Reyes",
      "Stewart",  "Morris",   "Morales",  "Murphy",   "Cook",     "Rogers",
      "Gutierrez", "Ortiz",   "Morgan",   "Cooper",   "Peterson", "Bailey",
      "Reed",     "Kelly",    "Howard",   "Ramos",    "Kim",      "Cox",
      "Ward",     "Richardson", "Watson", "Brooks",   "Chavez",   "Wood",
      "James",    "Bennett",  "Gray",     "Mendoza",  "Ruiz",     "Hughes",
      "Price",    "Alvarez",  "Castillo", "Sanders",  "Patel",    "Myers",
      "Adamson",  "Frost",    "Gunther",  "Olsen",    "Fielding", "Embley",
  };
  return kNames;
}

const std::vector<std::string>& Cities() {
  static const std::vector<std::string> kCities = {
      "Salt Lake City", "Tucson",      "Houston",     "San Francisco",
      "Seattle",        "Cincinnati",  "New Bedford", "Detroit",
      "Bridgeport",     "Atlanta",     "Alameda",     "Pocatello",
      "Sacramento",     "Tampa",       "Florence",    "Little Rock",
      "Sioux City",     "Knoxville",   "Lincoln",     "Reno",
      "Baltimore",      "Dallas",      "Denver",      "Indianapolis",
      "Los Angeles",    "Provo",       "Boston",      "Manhattan",
      "Austin",         "Ogden",       "Mesa",        "Spring City",
  };
  return kCities;
}

const std::vector<std::string>& MonthNames() {
  static const std::vector<std::string> kMonths = {
      "January", "February", "March",     "April",   "May",      "June",
      "July",    "August",   "September", "October", "November", "December",
  };
  return kMonths;
}

const std::vector<std::string>& CarMakes() {
  static const std::vector<std::string> kMakes = {
      "Ford",    "Honda",     "Toyota", "Chevrolet", "Dodge",      "Nissan",
      "Buick",   "Pontiac",   "Mercury", "Oldsmobile", "Plymouth", "Chrysler",
      "Mazda",   "Subaru",    "Volkswagen", "Jeep",  "Saturn",     "Cadillac",
      "Lincoln", "Mitsubishi",
  };
  return kMakes;
}

const std::vector<std::string>& ModelsOf(const std::string& make) {
  static const std::map<std::string, std::vector<std::string>> kModels = {
      {"Ford", {"Taurus", "Escort", "Explorer", "Ranger", "Mustang", "Contour"}},
      {"Honda", {"Accord", "Civic", "Prelude", "Odyssey", "Passport"}},
      {"Toyota", {"Camry", "Corolla", "Celica", "Tercel", "Avalon", "Previa"}},
      {"Chevrolet", {"Cavalier", "Lumina", "Malibu", "Blazer", "Suburban"}},
      {"Dodge", {"Caravan", "Neon", "Intrepid", "Stratus", "Dakota"}},
      {"Nissan", {"Altima", "Sentra", "Maxima", "Pathfinder", "Quest"}},
      {"Buick", {"LeSabre", "Century", "Regal", "Skylark", "Riviera"}},
      {"Pontiac", {"Grand Am", "Bonneville", "Sunfire", "Firebird"}},
      {"Mercury", {"Sable", "Tracer", "Cougar", "Villager"}},
      {"Oldsmobile", {"Cutlass", "Achieva", "Aurora", "Bravada"}},
      {"Plymouth", {"Voyager", "Breeze", "Neon"}},
      {"Chrysler", {"Concorde", "Cirrus", "Sebring"}},
      {"Mazda", {"Protege", "Millenia", "MX-5"}},
      {"Subaru", {"Legacy", "Impreza", "Outback"}},
      {"Volkswagen", {"Jetta", "Passat", "Golf"}},
      {"Jeep", {"Cherokee", "Wrangler", "Grand Cherokee"}},
      {"Saturn", {"SL1", "SL2", "SC2"}},
      {"Cadillac", {"DeVille", "Seville", "Eldorado"}},
      {"Lincoln", {"Town Car", "Continental", "Mark VIII"}},
      {"Mitsubishi", {"Galant", "Eclipse", "Mirage"}},
  };
  static const std::vector<std::string> kEmpty;
  auto it = kModels.find(make);
  return it == kModels.end() ? kEmpty : it->second;
}

const std::vector<std::string>& CarColors() {
  static const std::vector<std::string> kColors = {
      "white", "black", "red",    "blue",   "green",  "silver",
      "gold",  "teal",  "maroon", "beige",  "gray",   "burgundy",
  };
  return kColors;
}

const std::vector<std::string>& CarFeatures() {
  static const std::vector<std::string> kFeatures = {
      "air conditioning", "power windows", "power locks", "cruise control",
      "sunroof",          "leather seats", "automatic",   "5-speed",
      "anti-lock brakes", "alloy wheels",  "cassette",    "CD player",
      "tinted windows",   "towing package",
  };
  return kFeatures;
}

const std::vector<std::string>& JobTitles() {
  static const std::vector<std::string> kTitles = {
      "Programmer",            "Software Engineer",   "Systems Analyst",
      "Database Administrator", "Web Developer",      "Network Engineer",
      "Project Manager",       "Technical Writer",    "Support Specialist",
      "QA Engineer",           "Systems Administrator", "Data Analyst",
      "Applications Developer", "Help Desk Technician", "LAN Administrator",
      "Programmer Analyst",    "Consultant",          "Systems Programmer",
      "Operations Manager",    "Computer Operator",
  };
  return kTitles;
}

const std::vector<std::string>& Skills() {
  static const std::vector<std::string> kSkills = {
      "C++",      "Java",    "SQL",       "Oracle",   "HTML",    "Unix",
      "Windows NT", "COBOL", "Visual Basic", "Perl",  "JavaScript", "CGI",
      "Sybase",   "Informix", "PowerBuilder", "Access", "TCP/IP", "Novell",
      "AS/400",   "RPG",     "Delphi",    "Fortran",  "Linux",   "Apache",
      "PL/SQL",   "MVS",     "CICS",      "DB2",      "SAP",     "Lotus Notes",
  };
  return kSkills;
}

const std::vector<std::string>& CompanySuffixes() {
  static const std::vector<std::string> kSuffixes = {
      "Systems", "Technologies", "Consulting", "Solutions", "Data Services",
      "Software", "Computing", "Associates", "Group", "Corporation",
  };
  return kSuffixes;
}

const std::vector<std::string>& DepartmentCodes() {
  static const std::vector<std::string> kCodes = {
      "CS",   "MATH", "PHYS", "CHEM", "BIOL", "ENGL", "HIST", "ECON",
      "PSYCH", "PHIL", "GEOL", "STAT", "EE",   "ME",   "CE",   "ACC",
      "MUS",  "ART",  "SPAN", "FREN",
  };
  return kCodes;
}

const std::vector<std::string>& CourseTopics() {
  static const std::vector<std::string> kTopics = {
      "Introduction to Programming", "Data Structures",
      "Discrete Mathematics",        "Operating Systems",
      "Database Systems",            "Computer Networks",
      "Software Engineering",        "Linear Algebra",
      "Calculus I",                  "Calculus II",
      "Organic Chemistry",           "General Physics",
      "American Literature",         "World History",
      "Microeconomics",              "Macroeconomics",
      "Cognitive Psychology",        "Ethics",
      "Statistics for Engineers",    "Numerical Methods",
      "Compiler Construction",       "Artificial Intelligence",
      "Abstract Algebra",            "Thermodynamics",
  };
  return kTopics;
}

const std::vector<std::string>& WeekdayPatterns() {
  static const std::vector<std::string> kPatterns = {
      "MWF", "TTh", "MW", "Daily", "M", "T", "W", "Th", "F",
  };
  return kPatterns;
}

const std::vector<std::string>& Mortuaries() {
  static const std::vector<std::string> kMortuaries = {
      "Memorial Chapel",          "Heather Mortuary",
      "Carrillo's Tucson Mortuary", "Valley View Funeral Home",
      "Larkin Mortuary",          "Wasatch Lawn Mortuary",
      "Evans and Early Mortuary", "Deseret Mortuary",
      "Pioneer Funeral Home",     "Sunset Gardens Mortuary",
  };
  return kMortuaries;
}

const std::vector<std::string>& Cemeteries() {
  static const std::vector<std::string> kCemeteries = {
      "Holy Hope Cemetery",       "City Cemetery",
      "Mountain View Cemetery",   "Evergreen Memorial Park",
      "Oak Hill Cemetery",        "Riverside Cemetery",
      "Pleasant Grove Cemetery",  "Eastlawn Memorial Gardens",
  };
  return kCemeteries;
}

const std::vector<std::string>& FillerSentences() {
  static const std::vector<std::string> kFiller = {
      "Friends and family are welcome to attend.",
      "The family wishes to thank the staff for their kindness.",
      "In lieu of flowers, contributions may be made to the charity of choice.",
      "Arrangements are under local direction.",
      "Excellent condition, must see to appreciate.",
      "One owner, garage kept, all records available.",
      "Serious inquiries only, evenings preferred.",
      "Competitive benefits and a friendly work environment.",
      "Fast growing company with opportunities for advancement.",
      "Send resume and references to the address below.",
      "Enrollment is limited and early registration is encouraged.",
      "See the department office for additional information.",
      "This section meets in the main lecture hall.",
      "Lab sections are arranged during the first week.",
      "Please mention this listing when you respond.",
      "Additional details available upon request.",
  };
  return kFiller;
}

}  // namespace webrbd::gen
