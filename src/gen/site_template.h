// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Site templates: parameterized 1998-era page layouts. Each of the paper's
// thirty sites (Table 1 calibration sites, Tables 6-9 test sites) maps to
// one template; documents from the same site share a layout but differ in
// record count and content, exactly as successive pages of a real
// classified section would.

#ifndef WEBRBD_GEN_SITE_TEMPLATE_H_
#define WEBRBD_GEN_SITE_TEMPLATE_H_

#include <string>
#include <vector>

#include "gen/record_content.h"
#include "ontology/bundled.h"
#include "util/rng.h"

namespace webrbd::gen {

/// The structural family of a site's record region.
enum class LayoutArchetype {
  kHrSeparated,   ///< records inline in a cell, <hr> between (Figure 2)
  kParagraphs,    ///< one <p> per record (often with the </p> omitted)
  kTableRows,     ///< classic listing table, one <tr><td>...</td></tr> per record
  kHeadlined,     ///< <h4> headline then body per record
  kAnchorHeaded,  ///< <a href=...> headline then body per record
  kNestedTables,  ///< one single-cell <table> per record inside a big cell
  kBrBlocks,      ///< records end with <br>; no other line breaks
};

/// A fully parameterized site layout.
struct SiteTemplate {
  std::string site_name;
  std::string url;
  LayoutArchetype archetype = LayoutArchetype::kHrSeparated;

  /// Per-application layout overrides: real sites formatted their obituary
  /// and classified sections differently, so a Table 1 site may use one
  /// archetype for obituaries and another for car ads.
  std::vector<std::pair<Domain, LayoutArchetype>> archetype_overrides;

  /// The archetype used for `domain`, honoring overrides.
  LayoutArchetype ArchetypeFor(Domain domain) const {
    for (const auto& [d, a] : archetype_overrides) {
      if (d == domain) return a;
    }
    return archetype;
  }

  /// Tag used for RecordPiece::kEmphasis ("b", "strong", "i", "font").
  std::string emphasis_tag = "b";

  /// Tag used for RecordPiece::kBreak; empty = breaks render as spaces.
  std::string break_tag = "br";

  /// Content-shaping knobs passed to the record generators.
  ContentOptions content;

  /// Records per document (uniform in [min, max]).
  int min_records = 10;
  int max_records = 25;

  /// 1998-isms and robustness stressors.
  bool uppercase_tags = false;        ///< <HR> instead of <hr>
  bool separator_attributes = false;  ///< <hr width="100%" size=2>
  bool omit_optional_end_tags = false;///< drop </p> / </td> / </tr> / </li>
  bool insert_comments = false;       ///< <!-- record --> markers
  bool stray_end_tags = false;        ///< inject bogus </font> tags
  int nav_links = 4;                  ///< masthead link count (page chrome)
  bool heading_inside_region = true;  ///< a section heading as first child
                                      ///< of the region (Figure 2's <h1>)
};

/// One generated document plus its ground truth.
struct GeneratedDocument {
  std::string html;

  /// Every tag that correctly separates the records (a document "may have
  /// more than one record separator", Section 5.2) — e.g. a single-cell
  /// listing table is separated equally well by tr and td.
  std::vector<std::string> correct_separators;

  /// Ground-truth plain text of each record, in order.
  std::vector<std::string> record_texts;

  /// Ground-truth structured fields of each record, in order
  /// (object-set name, rendered value); many-valued sets repeat.
  std::vector<std::vector<std::pair<std::string, std::string>>> record_fields;

  std::string site_name;
  Domain domain = Domain::kObituaries;
  int doc_index = 0;

  /// True iff `tag` is one of the correct separators.
  bool IsCorrectSeparator(const std::string& tag) const;
};

/// Renders one document for (site, domain, doc_index). Deterministic: the
/// RNG stream is derived from those three values alone, so regenerating a
/// corpus never changes documents that were already generated.
GeneratedDocument RenderDocument(const SiteTemplate& site, Domain domain,
                                 int doc_index);

/// Renders a single-record detail page (one entity, prose layout) — the
/// page kind the paper's assumptions exclude; used to exercise the
/// document classifier. correct_separators is empty.
GeneratedDocument RenderDetailPage(const SiteTemplate& site, Domain domain,
                                   int doc_index);

/// Renders a navigation/front page with links and boilerplate but no data
/// records. correct_separators and record_texts are empty.
GeneratedDocument RenderNavigationPage(const SiteTemplate& site);

}  // namespace webrbd::gen

#endif  // WEBRBD_GEN_SITE_TEMPLATE_H_
