// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "gen/sites.h"

namespace webrbd::gen {

namespace {

// Builder shorthand for the site roster below.
SiteTemplate Site(std::string name, std::string url, LayoutArchetype archetype) {
  SiteTemplate site;
  site.site_name = std::move(name);
  site.url = std::move(url);
  site.archetype = archetype;
  return site;
}

// "Sparse" sites use no inline emphasis markup and few line breaks —
// plain-prose records where the separator is the dominant tag (these are
// the sites where HT shines and OM/RP wobble).
void MakeSparse(SiteTemplate* site, double break_prob) {
  site->emphasis_tag = "";
  site->content.break_prob = break_prob;
}

std::vector<SiteTemplate> BuildCalibrationSites() {
  std::vector<SiteTemplate> sites;

  {  // Figure-2-like: <hr>-separated, bold-rich records.
    SiteTemplate s = Site("Salt Lake Tribune", "www.sltrib.com",
                          LayoutArchetype::kHrSeparated);
    s.content.length_variance = 0.6;
    sites.push_back(s);
  }
  {  // <HR WIDTH=...> with uppercase tags; sparse plain-prose records.
    SiteTemplate s = Site("Arizona Daily Star", "www.azstarnet.com",
                          LayoutArchetype::kHrSeparated);
    s.uppercase_tags = true;
    s.separator_attributes = true;
    MakeSparse(&s, 0.4);
    s.content.length_variance = 1.0;
    sites.push_back(s);
  }
  {  // Listing table with omitted </td></tr> (flattened by region repair).
    SiteTemplate s = Site("Houston Chronicle", "www.chron.com",
                          LayoutArchetype::kTableRows);
    s.omit_optional_end_tags = true;
    s.insert_comments = true;
    sites.push_back(s);
  }
  {  // <p>-separated with the </p> omitted, long and uneven records.
    SiteTemplate s = Site("San Francisco Chronicle", "www.sfgate.com",
                          LayoutArchetype::kParagraphs);
    s.omit_optional_end_tags = true;
    s.content.length_variance = 2.5;
    sites.push_back(s);
  }
  {  // <h4> headlines with <br>-rich bodies (the IT-list trap: br > h4).
    SiteTemplate s = Site("Seattle Times", "www.seatimes.com",
                          LayoutArchetype::kHeadlined);
    // The obituary section uses <h4> headlines (the IT-list trap: br
    // outranks h4); the auto classifieds are a conventional <hr> column.
    s.archetype_overrides = {{Domain::kCarAds, LayoutArchetype::kHrSeparated}};
    s.content.length_variance = 1.0;
    sites.push_back(s);
  }
  {  // Anchor-headlined listings.
    SiteTemplate s = Site("GoCincinnati.com", "classifinder.gocinci.net",
                          LayoutArchetype::kAnchorHeaded);
    s.content.length_variance = 3.0;
    sites.push_back(s);
  }
  {  // Records end with <br>; no other breaks.
    SiteTemplate s = Site("Standard Times", "www.s-t.com",
                          LayoutArchetype::kBrBlocks);
    s.content.length_variance = 0.8;
    sites.push_back(s);
  }
  {  // One single-cell table per record (single-candidate documents).
    SiteTemplate s = Site("Detroit Newspapers", "www.dnps.com",
                          LayoutArchetype::kNestedTables);
    sites.push_back(s);
  }
  {  // Sparse prose between <hr>s.
    SiteTemplate s = Site("Connecticut Post", "www.connpost.com",
                          LayoutArchetype::kHrSeparated);
    MakeSparse(&s, 0.45);
    s.content.length_variance = 0.8;
    sites.push_back(s);
  }
  {  // Sparse prose, noisier fields, stray end tags.
    SiteTemplate s = Site("Access Atlanta", "www.accessatlanta.com",
                          LayoutArchetype::kHrSeparated);
    MakeSparse(&s, 0.42);
    s.content.length_variance = 0.4;
    s.content.field_miss_prob = 0.15;
    s.stray_end_tags = true;
    sites.push_back(s);
  }
  return sites;
}

std::vector<SiteTemplate> BuildTestSites(Domain domain) {
  std::vector<SiteTemplate> sites;
  switch (domain) {
    case Domain::kObituaries: {  // Table 6
      SiteTemplate a = Site("Alameda Newspaper", "www.adone.com/alameda",
                            LayoutArchetype::kHrSeparated);
      a.content.length_variance = 0.7;
      sites.push_back(a);

      SiteTemplate b = Site("Idaho State Journal", "www.journalnet.com",
                            LayoutArchetype::kParagraphs);
      b.omit_optional_end_tags = true;
      b.content.length_variance = 1.8;
      sites.push_back(b);

      SiteTemplate c = Site("Sacramento Bee", "www.sacbee.com",
                            LayoutArchetype::kTableRows);
      c.omit_optional_end_tags = true;
      sites.push_back(c);

      SiteTemplate d = Site("Tampa Tribune", "www.tampatrib.com",
                            LayoutArchetype::kAnchorHeaded);
      sites.push_back(d);

      SiteTemplate e = Site("Shoals Timesdaily", "www.timesdaily.com",
                            LayoutArchetype::kBrBlocks);
      sites.push_back(e);
      break;
    }
    case Domain::kCarAds: {  // Table 7
      SiteTemplate a = Site("Arkansas Democrat - Gazette", "www.ardemgaz.com",
                            LayoutArchetype::kHrSeparated);
      sites.push_back(a);

      SiteTemplate b = Site("Sioux City Journal", "www.siouxcityjournal.com",
                            LayoutArchetype::kHrSeparated);
      MakeSparse(&b, 0.5);
      b.content.length_variance = 1.5;
      sites.push_back(b);

      SiteTemplate c = Site("Knoxville News", "www.knoxnews.com",
                            LayoutArchetype::kTableRows);
      c.omit_optional_end_tags = true;
      sites.push_back(c);

      SiteTemplate d = Site("Lincoln Journal Star", "www.nebweb.com",
                            LayoutArchetype::kNestedTables);
      sites.push_back(d);

      SiteTemplate e = Site("Reno Gazette - Journal",
                            "www.nevadanet.com/renogazette",
                            LayoutArchetype::kHrSeparated);
      MakeSparse(&e, 0.45);
      e.content.length_variance = 2.2;
      e.content.field_miss_prob = 0.18;
      sites.push_back(e);
      break;
    }
    case Domain::kJobAds: {  // Table 8
      SiteTemplate a = Site("Baltimore Sun", "www.sunspot.net",
                            LayoutArchetype::kHrSeparated);
      sites.push_back(a);

      SiteTemplate b = Site("Dallas Morning News", "dallasnews.com",
                            LayoutArchetype::kParagraphs);
      b.omit_optional_end_tags = true;
      b.content.length_variance = 2.5;
      sites.push_back(b);

      SiteTemplate c = Site("Denver Post", "www.denverpost.com",
                            LayoutArchetype::kHrSeparated);
      MakeSparse(&c, 0.45);
      c.content.field_miss_prob = 0.2;
      c.content.length_variance = 1.5;
      sites.push_back(c);

      SiteTemplate d = Site("Indianapolis Star/News", "www.starnews.com",
                            LayoutArchetype::kTableRows);
      d.omit_optional_end_tags = true;
      sites.push_back(d);

      SiteTemplate e = Site("Los Angeles Times", "www.latimes.com",
                            LayoutArchetype::kAnchorHeaded);
      e.content.length_variance = 2.0;
      sites.push_back(e);
      break;
    }
    case Domain::kCourses: {  // Table 9
      SiteTemplate a = Site("BYU", "www.byu.edu", LayoutArchetype::kTableRows);
      a.omit_optional_end_tags = true;
      sites.push_back(a);

      SiteTemplate b = Site("MIT", "registrar.mit.edu",
                            LayoutArchetype::kHrSeparated);
      sites.push_back(b);

      SiteTemplate c = Site("KSU", "www.ksu.edu",
                            LayoutArchetype::kParagraphs);
      c.omit_optional_end_tags = true;
      sites.push_back(c);

      SiteTemplate d = Site("USC", "www.usc.edu",
                            LayoutArchetype::kHeadlined);
      d.break_tag = "";  // headlines only; bodies flow without <br>
      sites.push_back(d);

      SiteTemplate e = Site("UT - Austin", "www.utexas.edu",
                            LayoutArchetype::kBrBlocks);
      sites.push_back(e);
      break;
    }
  }
  return sites;
}

}  // namespace

const std::vector<SiteTemplate>& CalibrationSites() {
  static const std::vector<SiteTemplate> kSites = BuildCalibrationSites();
  return kSites;
}

const std::vector<SiteTemplate>& TestSites(Domain domain) {
  static const std::vector<SiteTemplate> kObituaries =
      BuildTestSites(Domain::kObituaries);
  static const std::vector<SiteTemplate> kCars =
      BuildTestSites(Domain::kCarAds);
  static const std::vector<SiteTemplate> kJobs =
      BuildTestSites(Domain::kJobAds);
  static const std::vector<SiteTemplate> kCourses =
      BuildTestSites(Domain::kCourses);
  switch (domain) {
    case Domain::kObituaries: return kObituaries;
    case Domain::kCarAds: return kCars;
    case Domain::kJobAds: return kJobs;
    case Domain::kCourses: return kCourses;
  }
  return kObituaries;
}

std::vector<GeneratedDocument> GenerateCalibrationCorpus(Domain domain) {
  std::vector<GeneratedDocument> corpus;
  for (const SiteTemplate& site : CalibrationSites()) {
    for (int doc = 0; doc < kCalibrationDocsPerSite; ++doc) {
      corpus.push_back(RenderDocument(site, domain, doc));
    }
  }
  return corpus;
}

std::vector<GeneratedDocument> GenerateTestCorpus(Domain domain) {
  std::vector<GeneratedDocument> corpus;
  for (const SiteTemplate& site : TestSites(domain)) {
    // Distinct doc index space from calibration runs.
    corpus.push_back(RenderDocument(site, domain, /*doc_index=*/100));
  }
  return corpus;
}

}  // namespace webrbd::gen
