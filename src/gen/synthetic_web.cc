// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "gen/synthetic_web.h"

#include "gen/sites.h"
#include "util/string_util.h"

namespace webrbd::gen {

std::string SyntheticWeb::SectionSlug(Domain domain) {
  switch (domain) {
    case Domain::kObituaries: return "obituaries";
    case Domain::kCarAds: return "autos";
    case Domain::kJobAds: return "jobs";
    case Domain::kCourses: return "courses";
  }
  return "misc";
}

SyntheticWeb::SyntheticWeb() {
  for (const SiteTemplate& site : CalibrationSites()) {
    AddSite(site, {Domain::kObituaries, Domain::kCarAds});
  }
  for (Domain domain : kAllDomains) {
    for (const SiteTemplate& site : TestSites(domain)) {
      AddSite(site, {domain});
    }
  }
}

void SyntheticWeb::AddSite(const SiteTemplate& site,
                           const std::vector<Domain>& domains) {
  const size_t site_index = sites_.size();
  sites_.push_back(site);
  const std::string host = site.url;

  auto add = [&](const std::string& path, PageKind kind, Domain domain,
                 int page_index) {
    const std::string url = host + path;
    if (index_.emplace(url, Entry{site_index, kind, domain, page_index})
            .second) {
      order_.push_back(url);
    }
  };

  add("/", PageKind::kNavigation, Domain::kObituaries, 0);
  for (Domain domain : domains) {
    const std::string section = "/" + SectionSlug(domain) + "/";
    for (int page = 0; page < kListingPages; ++page) {
      add(section + "page" + std::to_string(page) + ".html",
          PageKind::kListing, domain, page);
    }
    for (int item = 0; item < kDetailPages; ++item) {
      add(section + "item" + std::to_string(item) + ".html",
          PageKind::kDetail, domain, item);
    }
  }
}

Result<WebPage> SyntheticWeb::Fetch(const std::string& url) const {
  std::string key = url;
  if (StartsWith(key, "http://")) key = key.substr(7);
  auto it = index_.find(key);
  if (it == index_.end()) {
    return Status::NotFound("404: no such page on the synthetic web: " + url);
  }
  const Entry& entry = it->second;
  const SiteTemplate& site = sites_[entry.site_index];

  WebPage page;
  page.url = key;
  page.kind = entry.kind;
  page.domain = entry.domain;
  switch (entry.kind) {
    case PageKind::kNavigation:
      page.document = RenderNavigationPage(site);
      break;
    case PageKind::kListing:
      page.document = RenderDocument(site, entry.domain, entry.page_index);
      break;
    case PageKind::kDetail:
      page.document =
          RenderDetailPage(site, entry.domain, entry.page_index);
      break;
  }
  return page;
}

std::vector<std::string> SyntheticWeb::AllUrls() const { return order_; }

std::vector<std::string> SyntheticWeb::ListingUrls(Domain domain) const {
  std::vector<std::string> urls;
  for (const std::string& url : order_) {
    const Entry& entry = index_.at(url);
    if (entry.kind == PageKind::kListing && entry.domain == domain) {
      urls.push_back(url);
    }
  }
  return urls;
}

}  // namespace webrbd::gen
