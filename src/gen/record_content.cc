// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "gen/record_content.h"

#include "gen/corpora.h"
#include "util/string_util.h"

namespace webrbd::gen {

namespace {

void AddText(GeneratedRecord* record, std::string text) {
  record->pieces.push_back(
      RecordPiece{RecordPiece::Kind::kText, std::move(text)});
}

void AddEmphasis(GeneratedRecord* record, std::string text) {
  record->pieces.push_back(
      RecordPiece{RecordPiece::Kind::kEmphasis, std::move(text)});
}

void AddBreak(GeneratedRecord* record) {
  record->pieces.push_back(RecordPiece{RecordPiece::Kind::kBreak, ""});
}

void MaybeAddBreak(GeneratedRecord* record, const ContentOptions& options,
                   Rng* rng) {
  if (rng->Chance(options.break_prob)) AddBreak(record);
}

void AddFact(GeneratedRecord* record, std::string object_set,
             std::string value) {
  record->fields.emplace_back(std::move(object_set), std::move(value));
}

std::string PersonName(Rng* rng, bool with_initial) {
  std::string name = rng->Pick(FirstNames());
  if (with_initial) {
    name += " ";
    name += static_cast<char>('A' + rng->Below(26));
    name += ".";
  }
  name += " " + rng->Pick(LastNames());
  return name;
}

std::string DateString(Rng* rng, int year_lo, int year_hi) {
  return rng->Pick(MonthNames()) + " " +
         std::to_string(rng->RangeInclusive(1, 28)) + ", " +
         std::to_string(rng->RangeInclusive(year_lo, year_hi));
}

std::string PhoneString(Rng* rng) {
  // Last four digits start at 3000 so the car-ad Year pattern (\b19..\b)
  // can never fire inside a phone number.
  return std::to_string(rng->RangeInclusive(200, 999)) + "-" +
         std::to_string(rng->RangeInclusive(3000, 9999));
}

int FillerCount(const ContentOptions& options, Rng* rng, int base) {
  const double spread = options.length_variance;
  const int extra = static_cast<int>(
      rng->Below(static_cast<uint32_t>(1 + 4 * spread)));
  return base + extra;
}

void AddFiller(GeneratedRecord* record, const ContentOptions& options,
               Rng* rng, int base) {
  const int count = FillerCount(options, rng, base);
  for (int i = 0; i < count; ++i) {
    AddText(record, rng->Pick(FillerSentences()) + " ");
  }
}

const char* Pronoun(Rng* rng) { return rng->Chance(0.5) ? "He" : "She"; }

}  // namespace

std::string GeneratedRecord::PlainText() const {
  // Concatenation mirrors what the record extractor reconstructs from the
  // rendered document: pieces verbatim, breaks as newlines. Record
  // templates carry their own inter-piece spacing.
  std::string joined;
  for (const RecordPiece& piece : pieces) {
    if (piece.kind == RecordPiece::Kind::kBreak) {
      joined += "\n";
    } else {
      joined += piece.text;
    }
  }
  return CollapseWhitespace(joined);
}

std::string GeneratedRecord::FieldValue(const std::string& object_set) const {
  for (const auto& [name, value] : fields) {
    if (name == object_set) return value;
  }
  return "";
}

GeneratedRecord GenerateObituary(const ContentOptions& options, Rng* rng) {
  GeneratedRecord record;
  if (rng->Chance(options.start_with_text_prob)) {
    AddText(&record, rng->Chance(0.5) ? "Our beloved " : "Our dear ");
  }
  const std::string name =
      PersonName(rng, /*with_initial=*/rng->Chance(0.6));
  AddEmphasis(&record, name);
  AddFact(&record, "DeceasedName", name);
  MaybeAddBreak(&record, options, rng);

  const std::string death_date = DateString(rng, 1998, 1998);
  std::string sentence =
      (rng->Chance(0.5) ? " died on " : " passed away on ") + death_date;
  AddFact(&record, "DeathDate", death_date);
  if (!rng->Chance(options.field_miss_prob)) {
    const std::string age =
        "age " + std::to_string(rng->RangeInclusive(19, 99));
    sentence += ", at " + age;
    AddFact(&record, "Age", age);
  }
  sentence += ". ";
  AddText(&record, std::move(sentence));

  const std::string birth_date = DateString(rng, 1905, 1979);
  AddText(&record, std::string(Pronoun(rng)) + " was born on " + birth_date +
                       " in " + rng->Pick(Cities()) + ". ");
  AddFact(&record, "BirthDate", birth_date);
  AddFiller(&record, options, rng, 1);

  if (rng->Chance(0.7)) {
    const std::string survivor1 = PersonName(rng, false);
    const std::string survivor2 = PersonName(rng, false);
    AddText(&record, std::string(Pronoun(rng)) + " is survived by " +
                         survivor1 + " and " + survivor2 + ". ");
    AddFact(&record, "SurvivorName", survivor1);
    AddFact(&record, "SurvivorName", survivor2);
  }
  if (!rng->Chance(options.field_miss_prob)) {
    const std::string funeral_date = DateString(rng, 1998, 1998);
    AddText(&record, "Funeral services will be held " + funeral_date +
                         " at " + std::to_string(rng->RangeInclusive(9, 12)) +
                         ":00 a.m. at ");
    AddFact(&record, "FuneralDate", funeral_date);
    const std::string mortuary = rng->Pick(Mortuaries());
    AddEmphasis(&record, mortuary);
    AddFact(&record, "Mortuary", mortuary);
    AddText(&record, ". ");
  }
  if (rng->Chance(0.8)) {
    const std::string cemetery = rng->Pick(Cemeteries());
    AddText(&record, "Interment in ");
    AddEmphasis(&record, cemetery);
    AddFact(&record, "IntermentPlace", "in " + cemetery);
    AddText(&record, ". ");
  }
  MaybeAddBreak(&record, options, rng);
  return record;
}

GeneratedRecord GenerateCarAd(const ContentOptions& options, Rng* rng) {
  GeneratedRecord record;
  if (rng->Chance(options.start_with_text_prob)) {
    AddText(&record, "For sale: ");
  }
  const std::string year =
      std::to_string(rng->RangeInclusive(1965, 1998));
  const std::string make = rng->Pick(CarMakes());
  const std::string model = rng->Pick(ModelsOf(make));
  AddEmphasis(&record, year + " " + make + " " + model);
  AddFact(&record, "Year", year);
  AddFact(&record, "Make", make);
  AddFact(&record, "Model", model);

  const std::string color = rng->Pick(CarColors());
  AddText(&record, ", " + color + ", ");
  AddFact(&record, "Color", color);
  if (!rng->Chance(options.field_miss_prob)) {
    const std::string mileage =
        std::to_string(rng->RangeInclusive(12, 150)) + ",000 miles";
    AddEmphasis(&record, mileage);
    AddFact(&record, "Mileage", mileage);
  }
  std::string features_text;
  const int feature_count = rng->RangeInclusive(0, 3);
  for (int i = 0; i < feature_count; ++i) {
    const std::string feature = rng->Pick(CarFeatures());
    features_text += ", " + feature;
    AddFact(&record, "Feature", feature);
  }
  AddText(&record, features_text + ". ");
  if (rng->Chance(0.6 * options.break_prob)) AddBreak(&record);
  AddFiller(&record, options, rng, 0);

  if (!rng->Chance(options.field_miss_prob)) {
    const std::string price =
        "$" + std::to_string(rng->RangeInclusive(1, 24)) + "," +
        std::to_string(rng->RangeInclusive(100, 999));
    AddEmphasis(&record, price);
    AddFact(&record, "Price", price);
    AddText(&record, ". ");
  }
  if (rng->Chance(0.9)) {
    const std::string phone = PhoneString(rng);
    AddText(&record, "Call " + phone + ". ");
    AddFact(&record, "PhoneNr", phone);
  }
  MaybeAddBreak(&record, options, rng);
  return record;
}

GeneratedRecord GenerateJobAd(const ContentOptions& options, Rng* rng) {
  GeneratedRecord record;
  if (rng->Chance(options.start_with_text_prob)) {
    AddText(&record, "Immediate opening: ");
  }
  const std::string title = rng->Pick(JobTitles());
  AddEmphasis(&record, title);
  AddFact(&record, "JobTitle", title);
  MaybeAddBreak(&record, options, rng);
  AddText(&record, " ");

  const std::string company =
      rng->Pick(LastNames()) + " " + rng->Pick(CompanySuffixes());
  AddEmphasis(&record, company);
  AddFact(&record, "Company", company);
  AddText(&record, " seeks a qualified candidate. ");
  if (!rng->Chance(options.field_miss_prob)) {
    const std::string skill1 = rng->Pick(Skills());
    std::string skills = skill1;
    AddFact(&record, "Skill", skill1);
    if (rng->Chance(0.7)) {
      const std::string skill2 = rng->Pick(Skills());
      skills += ", " + skill2;
      AddFact(&record, "Skill", skill2);
    }
    const std::string experience =
        std::to_string(rng->RangeInclusive(1, 10)) + " years experience";
    AddText(&record, "Requires " + experience + " with " + skills + ". ");
    AddFact(&record, "Experience", experience);
  }
  if (rng->Chance(0.85)) {
    if (rng->Chance(0.5)) {
      AddText(&record, "BS degree preferred. ");
      AddFact(&record, "Degree", "BS degree");
    } else {
      AddText(&record, "A technical degree is required. ");
      AddFact(&record, "Degree", "technical degree");
    }
  }
  if (!rng->Chance(options.field_miss_prob)) {
    const std::string salary =
        "$" + std::to_string(rng->RangeInclusive(28, 95)) + ",000";
    AddText(&record, "Salary ");
    AddEmphasis(&record, salary);
    AddFact(&record, "Salary", salary);
    AddText(&record, ". ");
  }
  AddFiller(&record, options, rng, 0);
  if (rng->Chance(0.8)) {
    const std::string phone = PhoneString(rng);
    AddText(&record, "Fax resume to " + phone + ". ");
    AddFact(&record, "ContactPhone", phone);
  }
  MaybeAddBreak(&record, options, rng);
  return record;
}

GeneratedRecord GenerateCourse(const ContentOptions& options, Rng* rng) {
  GeneratedRecord record;
  const std::string code = rng->Pick(DepartmentCodes()) + " " +
                           std::to_string(rng->RangeInclusive(100, 599));
  AddEmphasis(&record, code);
  AddFact(&record, "CourseCode", code);
  AddText(&record, " " + rng->Pick(CourseTopics()) + ". ");
  if (rng->Chance(0.5 * options.break_prob)) AddBreak(&record);

  const std::string credits =
      std::to_string(rng->RangeInclusive(1, 5)) + " credit hours";
  AddText(&record, credits + ". ");
  AddFact(&record, "Credits", credits);
  if (!rng->Chance(options.field_miss_prob)) {
    const std::string instructor = rng->Pick(LastNames());
    AddText(&record, "Instructor: ");
    AddEmphasis(&record, instructor);
    AddFact(&record, "Instructor", "Instructor: " + instructor);
    AddText(&record, ". ");
  }
  if (rng->Chance(0.6)) {
    const std::string prerequisite =
        rng->Pick(DepartmentCodes()) + " " +
        std::to_string(rng->RangeInclusive(100, 499));
    AddText(&record, "Prerequisite: " + prerequisite + ". ");
    AddFact(&record, "Prerequisite", prerequisite);
  } else {
    AddText(&record, "Prerequisite: none. ");
  }
  if (rng->Chance(0.9)) {
    const std::string days = rng->Pick(WeekdayPatterns());
    const std::string time = std::to_string(rng->RangeInclusive(7, 17)) +
                             ":" + (rng->Chance(0.5) ? "00" : "30");
    const std::string room =
        "Room " + std::to_string(rng->RangeInclusive(100, 499));
    AddText(&record, days + " " + time + ", " + room + ". ");
    AddFact(&record, "Days", days);
    AddFact(&record, "MeetingTime", time);
    AddFact(&record, "Room", room);
  }
  if (rng->Chance(0.3 * options.length_variance)) {
    AddText(&record, rng->Pick(FillerSentences()) + " ");
  }
  MaybeAddBreak(&record, options, rng);
  return record;
}

GeneratedRecord GenerateRecord(Domain domain, const ContentOptions& options,
                               Rng* rng) {
  switch (domain) {
    case Domain::kObituaries: return GenerateObituary(options, rng);
    case Domain::kCarAds: return GenerateCarAd(options, rng);
    case Domain::kJobAds: return GenerateJobAd(options, rng);
    case Domain::kCourses: return GenerateCourse(options, rng);
  }
  return GeneratedRecord();
}

}  // namespace webrbd::gen
