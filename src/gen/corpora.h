// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Word lists behind the synthetic corpus: names, places, car makes/models,
// job titles and skills, university departments and course titles, month
// names. These double as the lexicon contents of the bundled ontologies'
// data frames, so the recognizer and the generator agree by construction —
// exactly the role the authors' hand-built lexicons played.

#ifndef WEBRBD_GEN_CORPORA_H_
#define WEBRBD_GEN_CORPORA_H_

#include <string>
#include <vector>

namespace webrbd::gen {

/// People.
const std::vector<std::string>& FirstNames();
const std::vector<std::string>& LastNames();

/// Places.
const std::vector<std::string>& Cities();

/// Calendar.
const std::vector<std::string>& MonthNames();

/// Cars. Models() maps 1:1 onto a make by index via ModelsOf().
const std::vector<std::string>& CarMakes();
const std::vector<std::string>& ModelsOf(const std::string& make);
const std::vector<std::string>& CarColors();
const std::vector<std::string>& CarFeatures();

/// Jobs.
const std::vector<std::string>& JobTitles();
const std::vector<std::string>& Skills();
const std::vector<std::string>& CompanySuffixes();

/// Universities.
const std::vector<std::string>& DepartmentCodes();
const std::vector<std::string>& CourseTopics();
const std::vector<std::string>& WeekdayPatterns();

/// Mortuaries / funeral homes (obituaries).
const std::vector<std::string>& Mortuaries();

/// Cemetery names (obituaries).
const std::vector<std::string>& Cemeteries();

/// Neutral filler sentences free of every ontology keyword; used to pad
/// records and page chrome without perturbing the OM heuristic.
const std::vector<std::string>& FillerSentences();

}  // namespace webrbd::gen

#endif  // WEBRBD_GEN_CORPORA_H_
