// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Domain record content: structured facts rendered to a markup-neutral
// piece list. Site templates (gen/site_template.h) decide how pieces map to
// HTML — which emphasis tag, which break tag, how records are separated —
// so one content generator serves every site layout.
//
// The paper evaluated on live 1998 newspaper/university pages; these
// generators are the synthetic stand-in (see DESIGN.md §1). They reproduce
// the signals the heuristics consume: per-record keyword phrases and
// constants for OM, record-length distributions for SD, emphasis/break tag
// densities for HT and RP.

#ifndef WEBRBD_GEN_RECORD_CONTENT_H_
#define WEBRBD_GEN_RECORD_CONTENT_H_

#include <string>
#include <utility>
#include <vector>

#include "ontology/bundled.h"
#include "util/rng.h"

namespace webrbd::gen {

/// One markup-neutral piece of a record.
struct RecordPiece {
  enum class Kind {
    kText,      ///< plain prose
    kEmphasis,  ///< rendered with the site's emphasis tag (<b>, <strong>, <i>)
    kBreak,     ///< rendered as the site's line-break tag (usually <br>)
  };
  Kind kind = Kind::kText;
  std::string text;  // empty for kBreak
};

/// A generated record: its pieces, the concatenated plain text, and the
/// structured facts it was rendered from — the ground truth the extraction
/// pipeline should recover.
struct GeneratedRecord {
  std::vector<RecordPiece> pieces;

  /// (object-set name, rendered value) pairs, in rendering order.
  /// Many-valued object sets repeat. Values use the surface form a correct
  /// extraction would produce (e.g. "age 41", "$4,500", "78,000 miles").
  std::vector<std::pair<std::string, std::string>> fields;

  /// Whitespace-collapsed plain text of the record.
  std::string PlainText() const;

  /// First value recorded for an object set, or "" when absent.
  std::string FieldValue(const std::string& object_set) const;
};

/// Content-shaping knobs a site template can vary.
struct ContentOptions {
  /// Probability that an optional field (funeral date, mileage, salary...)
  /// is omitted from a record. The paper's real pages miss fields too; this
  /// is what keeps the OM estimate off a perfect record count.
  double field_miss_prob = 0.08;

  /// Probability a record opens with prose before its first emphasized
  /// span ("Our beloved <b>...</b>"), which suppresses separator+emphasis
  /// adjacency and starves the RP heuristic.
  double start_with_text_prob = 0.25;

  /// Scales the number of filler sentences (record-length variance): 0 =
  /// uniform records, 1 = paper-like spread, larger = wilder.
  double length_variance = 1.0;

  /// Probability that a kBreak piece is emitted where the layout allows one.
  double break_prob = 0.85;
};

/// Generates one record of the given domain.
GeneratedRecord GenerateRecord(Domain domain, const ContentOptions& options,
                               Rng* rng);

/// Domain-specific generators (exposed for focused tests).
GeneratedRecord GenerateObituary(const ContentOptions& options, Rng* rng);
GeneratedRecord GenerateCarAd(const ContentOptions& options, Rng* rng);
GeneratedRecord GenerateJobAd(const ContentOptions& options, Rng* rng);
GeneratedRecord GenerateCourse(const ContentOptions& options, Rng* rng);

}  // namespace webrbd::gen

#endif  // WEBRBD_GEN_RECORD_CONTENT_H_
