// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Deterministic adversarial-document generator: each shape is a distilled
// pathological page targeting one specific blow-up in the HTML front end
// (see robust/limits.h for the caps each shape is meant to trip and
// docs/robustness.md for the catalog). Fully deterministic — same shape
// and scale always render byte-identical documents — so fault-injection
// tests and CLI smokes are reproducible without seed management.

#ifndef WEBRBD_GEN_ADVERSARIAL_H_
#define WEBRBD_GEN_ADVERSARIAL_H_

#include <string>
#include <string_view>
#include <vector>

namespace webrbd::gen {

/// The pathological page shapes. Each targets a distinct front-end hazard.
enum class AdversarialShape {
  kDepthBomb,           ///< scale nested, never-closed <div>s (tree depth)
  kTagStorm,            ///< scale tiny elements in a row (token volume)
  kStrayEndStorm,       ///< unclosed starts + stray ends (balancer blow-up)
  kUnterminatedQuote,   ///< attribute values missing their closing quote
  kUnterminatedComment, ///< <!-- with no --> before end of input
  kUnterminatedRawText, ///< <script> with no </script>
  kEntityFlood,         ///< scale character/entity references in one text run
  kMegaAttribute,       ///< one attribute value of ~scale bytes
  kRawTextCloseStorm,   ///< <script> body of scale near-miss "</scrip" closers
  kDistinctTagStorm,    ///< scale never-repeated tag names (intern-pool growth)
};

/// Every shape, in declaration order (for exhaustive fault injection).
const std::vector<AdversarialShape>& AllAdversarialShapes();

/// Stable lowercase identifier, e.g. "depth-bomb".
std::string_view AdversarialShapeName(AdversarialShape shape);

/// Renders the document for `shape` at the given scale (the number of
/// repeating units; bytes for kMegaAttribute). Deterministic.
std::string RenderAdversarialDocument(AdversarialShape shape, size_t scale);

/// A document per shape at scales chosen to trip the production
/// DocumentLimits caps where the shape has a fatal cap to trip, and to
/// exercise the recovery paths where it does not. Cycles through the
/// shapes when `count` exceeds their number.
std::vector<std::string> AdversarialCorpus(size_t count);

}  // namespace webrbd::gen

#endif  // WEBRBD_GEN_ADVERSARIAL_H_
