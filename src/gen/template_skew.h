// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Template-skew corpus mode: N structurally distinct page templates with a
// Zipf-distributed page count per template. Real crawls are dominated by a
// few hot templates with a long tail of rare ones — exactly the shape that
// makes template memoization (extract/template_cache.h) pay. Unlike the
// SiteTemplate renderers, whose probabilistic inline markup lets two pages
// of one site differ in tag vocabulary, every page of one skew template
// carries an IDENTICAL distinct tag-path set: only record count and text
// content vary. That makes the corpus a precision instrument — the cache's
// hit rate on it is (pages - distinct templates) / pages by construction,
// so benchmark regressions point at the cache, not at generator noise.

#ifndef WEBRBD_GEN_TEMPLATE_SKEW_H_
#define WEBRBD_GEN_TEMPLATE_SKEW_H_

#include <cstdint>
#include <string>
#include <vector>

namespace webrbd::gen {

/// Knobs for GenerateTemplateSkewCorpus.
struct TemplateSkewOptions {
  /// Distinct page templates. Each index maps to a unique combination of
  /// separator archetype, emphasis tag, heading level, and wrapper nesting
  /// (mixed-radix decomposition), so any two templates differ in their
  /// distinct tag-path set. At most 720 unique combinations exist; beyond
  /// that, templates repeat structure.
  int num_templates = 100;

  /// Total pages. Template assignment is Zipf-distributed: template rank k
  /// gets weight 1 / (k + 1)^zipf_exponent.
  int num_pages = 10000;

  /// Skew strength. 0 = uniform; ~1 = classic web-like skew where the top
  /// handful of templates covers most pages.
  double zipf_exponent = 1.0;

  /// Records per page, uniform in [min_records, max_records]. The default
  /// span keeps every page of a template within the template cache's
  /// factor-4 separator-count plausibility window (40 / 14 < 4), at a
  /// listing-page record count that amortizes the per-document fixed
  /// costs the way a real 1998 directory page did.
  int min_records = 14;
  int max_records = 40;

  /// Master seed. Same options => byte-identical corpus, any platform.
  uint64_t seed = 0x5eedf00d;
};

/// A generated skew corpus.
struct TemplateSkewCorpus {
  /// Page HTML, in corpus order.
  std::vector<std::string> pages;

  /// Which template produced pages[i].
  std::vector<int> template_of_page;

  /// Histogram: pages generated per template (index = template id).
  std::vector<int> pages_per_template;

  /// Templates that produced at least one page (<= options.num_templates;
  /// heavy skew can starve the tail). A cache-enabled batch over `pages`
  /// misses exactly this many times.
  int distinct_templates_used = 0;
};

/// Renders the corpus. Deterministic in `options`; pages of one template
/// share their distinct tag-path set (and therefore their template-cache
/// fingerprint) by construction.
TemplateSkewCorpus GenerateTemplateSkewCorpus(
    const TemplateSkewOptions& options = {});

}  // namespace webrbd::gen

#endif  // WEBRBD_GEN_TEMPLATE_SKEW_H_
