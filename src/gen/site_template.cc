// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "gen/site_template.h"

#include "gen/corpora.h"
#include "util/string_util.h"

namespace webrbd::gen {

namespace {

// Renders tag markup respecting the site's tag-case habit.
class Markup {
 public:
  Markup(const SiteTemplate& site, Rng* rng) : site_(site), rng_(rng) {}

  std::string Open(std::string_view name, std::string_view attrs = "") const {
    std::string tag = "<" + Cased(name);
    if (!attrs.empty()) {
      tag += " ";
      tag += attrs;
    }
    tag += ">";
    return tag;
  }

  std::string Close(std::string_view name) const {
    return "</" + Cased(name) + ">";
  }

  std::string Separator(std::string_view name) const {
    if (site_.separator_attributes && name == "hr") {
      return Open(name, "width=\"100%\" size=2");
    }
    if (site_.separator_attributes && name == "p") {
      return Open(name, "align=left");
    }
    return Open(name);
  }

  // Renders a record's pieces. When `skip_first_emphasis` the first
  // kEmphasis piece is omitted (the caller rendered it as a headline).
  std::string Pieces(const GeneratedRecord& record,
                     bool skip_first_emphasis) const {
    std::string out;
    bool first_emphasis_pending = skip_first_emphasis;
    for (const RecordPiece& piece : record.pieces) {
      switch (piece.kind) {
        case RecordPiece::Kind::kText:
          out += piece.text;
          break;
        case RecordPiece::Kind::kEmphasis:
          if (first_emphasis_pending) {
            first_emphasis_pending = false;
            break;
          }
          if (site_.emphasis_tag.empty()) {
            out += piece.text;  // sparse sites render emphasis as plain text
          } else {
            out += Open(site_.emphasis_tag) + piece.text +
                   Close(site_.emphasis_tag);
          }
          break;
        case RecordPiece::Kind::kBreak:
          if (!site_.break_tag.empty()) out += Open(site_.break_tag);
          out += "\n";
          break;
      }
    }
    return out;
  }

  // First kEmphasis text, or a fallback snippet of the first text piece.
  static std::string Headline(const GeneratedRecord& record) {
    for (const RecordPiece& piece : record.pieces) {
      if (piece.kind == RecordPiece::Kind::kEmphasis) return piece.text;
    }
    for (const RecordPiece& piece : record.pieces) {
      if (piece.kind == RecordPiece::Kind::kText) {
        return piece.text.substr(0, 40);
      }
    }
    return "Listing";
  }

  std::string MaybeComment(int index) const {
    if (!site_.insert_comments) return "";
    return "<!-- listing " + std::to_string(index) + " -->\n";
  }

  std::string MaybeStrayEnd() const {
    if (!site_.stray_end_tags || !rng_->Chance(0.2)) return "";
    return "</font>\n";
  }

 private:
  std::string Cased(std::string_view name) const {
    std::string out(name);
    if (site_.uppercase_tags) {
      for (char& c : out) {
        if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
      }
    }
    return out;
  }

  const SiteTemplate& site_;
  Rng* rng_;
};

std::string SectionName(Domain domain) {
  switch (domain) {
    case Domain::kObituaries: return "Funeral Notices";
    case Domain::kCarAds: return "Autos For Sale";
    case Domain::kJobAds: return "Computer Help Wanted";
    case Domain::kCourses: return "Course Catalog";
  }
  return "Classifieds";
}

std::string PageHeader(const SiteTemplate& site, Domain domain, Rng* rng) {
  std::string out = "<html><head><title>" + site.site_name + " - " +
                    SectionName(domain) + "</title></head>\n";
  out += "<body bgcolor=\"#FFFFFF\">\n";
  out += "<center><h1>" + site.site_name + "</h1>\n";
  static const char* kNavNames[] = {"Home",     "News",    "Sports",
                                    "Weather",  "Business", "Classifieds",
                                    "Archives", "Contact"};
  for (int i = 0; i < site.nav_links && i < 8; ++i) {
    out += "<a href=\"/" + AsciiToLower(kNavNames[i]) + ".html\">" +
           kNavNames[i] + "</a>\n";
  }
  out += "</center>\n";
  out += "Updated " + rng->Pick(MonthNames()) + " " +
         std::to_string(rng->RangeInclusive(1, 28)) + ", 1998\n";
  return out;
}

std::string PageFooter(const SiteTemplate& site) {
  return "<hr>\n<address>Copyright 1998 " + site.site_name +
         ". All material is copyrighted.</address>\n</body>\n</html>\n";
}

std::string RegionHeading(const SiteTemplate& site, Domain domain,
                          const Markup& markup) {
  if (!site.heading_inside_region) return "";
  return markup.Open("h2") + SectionName(domain) + " - " +
         markup.Close("h2") + "\n";
}

}  // namespace

bool GeneratedDocument::IsCorrectSeparator(const std::string& tag) const {
  for (const std::string& separator : correct_separators) {
    if (separator == tag) return true;
  }
  return false;
}

GeneratedDocument RenderDocument(const SiteTemplate& site, Domain domain,
                                 int doc_index) {
  Rng rng(StableHash64(site.site_name + "|" + DomainName(domain) + "|" +
                       std::to_string(doc_index)));
  Markup markup(site, &rng);

  const LayoutArchetype archetype = site.ArchetypeFor(domain);
  ContentOptions content = site.content;
  if (archetype == LayoutArchetype::kBrBlocks) {
    // kBrBlocks reserves <br> for record boundaries.
    content.break_prob = 0.0;
  }

  GeneratedDocument doc;
  doc.site_name = site.site_name;
  doc.domain = domain;
  doc.doc_index = doc_index;

  const int record_count =
      rng.RangeInclusive(site.min_records, site.max_records);
  std::vector<GeneratedRecord> records;
  records.reserve(static_cast<size_t>(record_count));
  for (int i = 0; i < record_count; ++i) {
    records.push_back(GenerateRecord(domain, content, &rng));
    doc.record_texts.push_back(records.back().PlainText());
    doc.record_fields.push_back(records.back().fields);
  }

  std::string body;
  const bool cell_hosted = archetype != LayoutArchetype::kTableRows;
  if (cell_hosted) {
    body += markup.Open("table", "border=0 cellpadding=4") + markup.Open("tr") +
            markup.Open("td") + "\n";
    body += RegionHeading(site, domain, markup);
  } else {
    body += RegionHeading(site, domain, markup);
    body += markup.Open("table", "border=1") + "\n";
  }

  for (int i = 0; i < record_count; ++i) {
    const GeneratedRecord& record = records[static_cast<size_t>(i)];
    body += markup.MaybeComment(i);
    switch (archetype) {
      case LayoutArchetype::kHrSeparated:
        body += markup.Separator("hr") + "\n";
        body += markup.Pieces(record, false);
        body += "\n";
        break;
      case LayoutArchetype::kParagraphs:
        body += markup.Separator("p") + "\n";
        body += markup.Pieces(record, false);
        if (!site.omit_optional_end_tags) body += markup.Close("p");
        body += "\n";
        break;
      case LayoutArchetype::kTableRows:
        body += markup.Open("tr") + markup.Open("td");
        body += markup.Pieces(record, false);
        if (!site.omit_optional_end_tags) {
          body += markup.Close("td") + markup.Close("tr");
        }
        body += "\n";
        break;
      case LayoutArchetype::kHeadlined:
        body += markup.Open("h4") + Markup::Headline(record) +
                markup.Close("h4") + "\n";
        body += markup.Pieces(record, true);
        body += "\n";
        break;
      case LayoutArchetype::kAnchorHeaded:
        body += markup.Open("a", "href=\"/listing/" + std::to_string(i) +
                                     ".html\"") +
                Markup::Headline(record) + markup.Close("a") + " ";
        body += markup.Pieces(record, true);
        body += "\n";
        break;
      case LayoutArchetype::kNestedTables:
        body += markup.Open("table", "border=1 width=\"90%\"") +
                markup.Open("tr") + markup.Open("td");
        body += markup.Pieces(record, false);
        body += markup.Close("td") + markup.Close("tr") +
                markup.Close("table") + "\n";
        break;
      case LayoutArchetype::kBrBlocks:
        body += markup.Pieces(record, false);
        body += markup.Open("br") + "\n";
        break;
    }
    body += markup.MaybeStrayEnd();
  }

  // Trailing separator, as in Figure 2(a)'s final <hr>.
  if (archetype == LayoutArchetype::kHrSeparated && rng.Chance(0.7)) {
    body += markup.Separator("hr") + "\n";
  }

  if (cell_hosted) {
    body += markup.Close("td") + markup.Close("tr") + markup.Close("table") +
            "\n";
  } else {
    body += markup.Close("table") + "\n";
  }

  switch (archetype) {
    case LayoutArchetype::kHrSeparated:
      doc.correct_separators = {"hr"};
      break;
    case LayoutArchetype::kParagraphs:
      doc.correct_separators = {"p"};
      break;
    case LayoutArchetype::kTableRows:
      doc.correct_separators = {"tr", "td"};
      break;
    case LayoutArchetype::kHeadlined:
      doc.correct_separators = {"h4"};
      break;
    case LayoutArchetype::kAnchorHeaded:
      doc.correct_separators = {"a"};
      break;
    case LayoutArchetype::kNestedTables:
      doc.correct_separators = {"table", "tr", "td"};
      break;
    case LayoutArchetype::kBrBlocks:
      doc.correct_separators = {"br"};
      break;
  }

  doc.html = PageHeader(site, domain, &rng) + body + PageFooter(site);
  return doc;
}

GeneratedDocument RenderDetailPage(const SiteTemplate& site, Domain domain,
                                   int doc_index) {
  Rng rng(StableHash64(site.site_name + "|detail|" + DomainName(domain) +
                       "|" + std::to_string(doc_index)));
  Markup markup(site, &rng);

  GeneratedDocument doc;
  doc.site_name = site.site_name;
  doc.domain = domain;
  doc.doc_index = doc_index;

  GeneratedRecord record = GenerateRecord(domain, site.content, &rng);
  doc.record_texts.push_back(record.PlainText());
  doc.record_fields.push_back(record.fields);

  std::string body = markup.Open("table", "border=0") + markup.Open("tr") +
                     markup.Open("td") + "\n";
  body += markup.Open("h2") + Markup::Headline(record) + markup.Close("h2") +
          "\n";
  body += markup.Pieces(record, /*skip_first_emphasis=*/false);
  body += "\n" + markup.Close("td") + markup.Close("tr") +
          markup.Close("table") + "\n";
  doc.html = PageHeader(site, domain, &rng) + body + PageFooter(site);
  return doc;
}

GeneratedDocument RenderNavigationPage(const SiteTemplate& site) {
  Rng rng(StableHash64(site.site_name + "|nav"));
  GeneratedDocument doc;
  doc.site_name = site.site_name;

  std::string body = "<center><h1>" + site.site_name + "</h1></center>\n";
  body += "<table><tr><td>\n";
  static const char* kSections[] = {"Local News", "Obituaries", "Classifieds",
                                    "Sports",     "Weather",    "Opinion"};
  for (const char* section : kSections) {
    body += std::string("<a href=\"/") + section + "\">" + section +
            "</a><br>\n";
  }
  body += "</td></tr></table>\n";
  doc.html = "<html><head><title>" + site.site_name + "</title></head><body>" +
             body + "</body></html>\n";
  return doc;
}

}  // namespace webrbd::gen
