// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// A URL-addressable simulated 1998 web over the paper's thirty sites. The
// paper's pipeline starts from "a Web page" retrieved from a site; this
// substrate provides the retrieval side so crawls, classifier sweeps, and
// examples can work URL-first, deterministically, with no network.
//
// Each site serves:
//   http://<site>/                           front/navigation page
//   http://<site>/<section>/page<N>.html     multi-record listing pages
//   http://<site>/<section>/item<K>.html     single-record detail pages

#ifndef WEBRBD_GEN_SYNTHETIC_WEB_H_
#define WEBRBD_GEN_SYNTHETIC_WEB_H_

#include <map>
#include <string>
#include <vector>

#include "gen/site_template.h"
#include "util/result.h"

namespace webrbd::gen {

/// What a URL serves.
enum class PageKind {
  kNavigation,  ///< front page: links and boilerplate, no records
  kListing,     ///< multi-record page (discovery's assumptions hold)
  kDetail,      ///< one record's page
};

/// A fetched page.
struct WebPage {
  std::string url;
  PageKind kind = PageKind::kNavigation;
  Domain domain = Domain::kObituaries;  // meaningful for listing/detail
  GeneratedDocument document;
};

/// The simulated web. Pages are rendered on demand and deterministically:
/// fetching the same URL always returns the same bytes.
class SyntheticWeb {
 public:
  /// Pages per (site, section).
  static constexpr int kListingPages = 5;
  static constexpr int kDetailPages = 3;

  /// Indexes every Table 1 and Table 6-9 site.
  SyntheticWeb();

  /// Fetches a URL; NotFound for anything off the map. Accepts with or
  /// without the "http://" scheme.
  [[nodiscard]] Result<WebPage> Fetch(const std::string& url) const;

  /// Every URL the web serves, in deterministic order.
  std::vector<std::string> AllUrls() const;

  /// All listing-page URLs for one application domain.
  std::vector<std::string> ListingUrls(Domain domain) const;

  size_t site_count() const { return sites_.size(); }
  size_t url_count() const { return index_.size(); }

  /// URL section slug for a domain ("obituaries", "autos", "jobs",
  /// "courses").
  static std::string SectionSlug(Domain domain);

 private:
  struct Entry {
    size_t site_index;
    PageKind kind;
    Domain domain;
    int page_index;
  };

  void AddSite(const SiteTemplate& site, const std::vector<Domain>& domains);

  std::vector<SiteTemplate> sites_;
  std::map<std::string, Entry> index_;
  std::vector<std::string> order_;
};

}  // namespace webrbd::gen

#endif  // WEBRBD_GEN_SYNTHETIC_WEB_H_
