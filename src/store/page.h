// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// On-disk page format for the persistent record store (docs/storage.md).
//
// A store file is a sequence of fixed-size pages:
//
//   page 0            superblock {magic, version, page_size, checksum}
//   pages 1..N        data pages
//
// Every data page is laid out as
//
//   offset  size  field
//   0       4     magic           0x57425250 ("WBRP")
//   4       4     record_count
//   8       8     min_key
//   16      8     max_key         == min_key + record_count - 1
//   24      4     payload_bytes   bytes of packed records after the header
//   28      4     reserved        zero
//   32      8     checksum        FNV-1a over the page with this field zeroed
//   40      ...   payload: record_count x { u32 length, length bytes }
//   ...     ...   zero padding to page_size
//
// Keys are the store's ingest sequence and therefore DENSE within a page:
// record i carries key min_key + i, so only payload lengths are stored.
// The checksum covers header and payload, so a torn (partially written)
// final page fails validation on recovery and is truncated away.
//
// All integers are little-endian regardless of host order.

#ifndef WEBRBD_STORE_PAGE_H_
#define WEBRBD_STORE_PAGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace webrbd::store {

inline constexpr uint32_t kPageMagic = 0x57425250;        // "WBRP"
inline constexpr uint32_t kSuperblockMagic = 0x57425253;  // "WBRS"
inline constexpr uint32_t kFormatVersion = 1;
inline constexpr size_t kPageHeaderBytes = 40;
inline constexpr size_t kRecordLengthBytes = 4;

/// Largest payload a single record may carry in a file with the given
/// page size (one record must fit a page with its length prefix).
constexpr size_t MaxRecordPayload(size_t page_size) {
  return page_size - kPageHeaderBytes - kRecordLengthBytes;
}

/// Accumulates records for one data page and serializes it.
class PageBuilder {
 public:
  explicit PageBuilder(size_t page_size);

  /// True when a record with `payload_len` bytes still fits.
  bool Fits(size_t payload_len) const;

  /// Appends a record. Keys must be dense: the first record fixes
  /// min_key, each subsequent key must be the previous plus one.
  /// Fails with kInvalidArgument on a non-dense key, kResourceExhausted
  /// when the record does not fit (callers check Fits first and flush).
  [[nodiscard]] Status Append(uint64_t key, std::string_view payload);

  bool empty() const { return record_count_ == 0; }
  uint32_t record_count() const { return record_count_; }
  uint64_t min_key() const { return min_key_; }
  uint64_t max_key() const { return min_key_ + record_count_ - 1; }

  /// Serializes the page (header, payload, checksum, zero padding) into
  /// `out`, which must hold page_size bytes. The builder stays intact.
  void Finish(char* out) const;

  /// Clears the builder for the next page.
  void Reset();

 private:
  size_t page_size_;
  uint32_t record_count_ = 0;
  uint64_t min_key_ = 0;
  std::string payload_;
};

/// Validated view over one serialized data page. The page buffer must
/// outlive the reader; payload() returns views into it.
class PageReader {
 public:
  /// Parses and validates `page_size` bytes at `data`: magic, checksum,
  /// and record-length bounds all have to hold. A torn or corrupt page
  /// fails with kParseError.
  static Result<PageReader> Parse(const char* data, size_t page_size);

  uint32_t record_count() const { return record_count_; }
  uint64_t min_key() const { return min_key_; }
  uint64_t max_key() const { return max_key_; }

  /// Key of record `i` (dense within the page).
  uint64_t key(uint32_t i) const { return min_key_ + i; }

  /// Serialized payload of record `i`.
  std::string_view payload(uint32_t i) const {
    return payloads_[i];
  }

 private:
  PageReader() = default;

  uint32_t record_count_ = 0;
  uint64_t min_key_ = 0;
  uint64_t max_key_ = 0;
  std::vector<std::string_view> payloads_;
};

/// Serializes the superblock (page 0) into `out` (page_size bytes).
void EncodeSuperblock(size_t page_size, char* out);

/// Validates a superblock and returns the page size recorded in it.
/// `bytes_available` is how many bytes of page 0 actually exist; a file
/// too short to hold even the superblock header fails with kParseError.
Result<size_t> ParseSuperblock(const char* data, size_t bytes_available);

/// Little-endian integer accessors shared by page and record codecs.
void StoreU32(char* out, uint32_t v);
void StoreU64(char* out, uint64_t v);
uint32_t LoadU32(const char* in);
uint64_t LoadU64(const char* in);

}  // namespace webrbd::store

#endif  // WEBRBD_STORE_PAGE_H_
