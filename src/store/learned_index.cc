// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "store/learned_index.h"

#include <algorithm>
#include <limits>

namespace webrbd::store {

LearnedPageIndex::LearnedPageIndex(uint32_t epsilon) : epsilon_(epsilon) {}

void LearnedPageIndex::Add(uint64_t min_key, uint64_t page_index) {
  if (!open_) {
    open_ = true;
    open_base_key_ = min_key;
    open_base_page_ = page_index;
    open_slope_lo_ = -std::numeric_limits<double>::infinity();
    open_slope_hi_ = std::numeric_limits<double>::infinity();
    last_key_ = min_key;
    last_page_ = page_index;
    return;
  }
  if (min_key <= last_key_ || page_index != last_page_ + 1) return;

  const double dx = static_cast<double>(min_key - open_base_key_);
  const double dy =
      static_cast<double>(page_index) - static_cast<double>(open_base_page_);
  const double eps = static_cast<double>(epsilon_);
  const double lo = (dy - eps) / dx;
  const double hi = (dy + eps) / dx;
  const double new_lo = std::max(open_slope_lo_, lo);
  const double new_hi = std::min(open_slope_hi_, hi);
  if (new_lo > new_hi) {
    // Cone collapsed: the point breaks the epsilon bound for every slope
    // still admissible. Freeze the segment and start a new one here.
    double slope;
    if (open_slope_lo_ == -std::numeric_limits<double>::infinity()) {
      slope = 0.0;  // single-point segment predicts its base page
    } else {
      // The cone midpoint can dip below zero when epsilon is large
      // relative to the segment; zero is always inside the cone for
      // monotone points, so clamping keeps both the error bound and
      // monotonicity of the model.
      slope = std::max(0.0, (open_slope_lo_ + open_slope_hi_) / 2.0);
    }
    segments_.push_back({open_base_key_, open_base_page_, slope});
    open_base_key_ = min_key;
    open_base_page_ = page_index;
    open_slope_lo_ = -std::numeric_limits<double>::infinity();
    open_slope_hi_ = std::numeric_limits<double>::infinity();
  } else {
    open_slope_lo_ = new_lo;
    open_slope_hi_ = new_hi;
  }
  last_key_ = min_key;
  last_page_ = page_index;
}

LearnedPageIndex::PageWindow LearnedPageIndex::Locate(uint64_t key) const {
  // Pick the segment owning `key`: the last one with base_key <= key,
  // considering the still-open segment as the final entry.
  uint64_t base_key = open_base_key_;
  uint64_t base_page = open_base_page_;
  // Last page the chosen segment is responsible for: its epsilon bound
  // holds only at the keys it was built from, so predictions must never
  // extrapolate past this (the key span between a segment's last page and
  // the NEXT segment's base key is exactly where the cone broke, and the
  // error there is unbounded).
  uint64_t segment_end = last_page_;
  double slope;
  if (open_slope_lo_ == -std::numeric_limits<double>::infinity()) {
    slope = 0.0;
  } else {
    slope = std::max(0.0, (open_slope_lo_ + open_slope_hi_) / 2.0);
  }
  if (key < open_base_key_ && !segments_.empty()) {
    auto it = std::upper_bound(
        segments_.begin(), segments_.end(), key,
        [](uint64_t k, const Segment& s) { return k < s.base_key; });
    if (it != segments_.begin()) {
      --it;
      base_key = it->base_key;
      base_page = it->base_page;
      slope = it->slope;
      const auto next = it + 1;
      segment_end =
          (next != segments_.end() ? next->base_page : open_base_page_) - 1;
    } else {
      // Key precedes every page: the first page is the only candidate.
      return {segments_.front().base_page, segments_.front().base_page};
    }
  } else if (key < open_base_key_) {
    return {open_base_page_, open_base_page_};
  }

  const double dx =
      static_cast<double>(key) - static_cast<double>(base_key);
  double predicted = static_cast<double>(base_page) + slope * dx;
  predicted = std::clamp(predicted, static_cast<double>(base_page),
                         static_cast<double>(segment_end));
  // Margin is epsilon + 1: floor truncation and interpolating between
  // two page min-keys can each shift the true page one past the model's
  // per-point error bound.
  const auto center = static_cast<uint64_t>(predicted);
  const uint64_t margin = static_cast<uint64_t>(epsilon_) + 1;
  const uint64_t first =
      center > base_page + margin ? center - margin : base_page;
  const uint64_t last = std::min(center + margin, segment_end);
  return {first, std::max(first, last)};
}

}  // namespace webrbd::store
