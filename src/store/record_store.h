// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// RecordStore: the page-based persistent record store (docs/storage.md).
//
// A store is an append-only sequence of populated records keyed by a
// dense, monotonic ingest sequence (key 0 is the first record ever
// appended). Records buffer in memory and are sealed to fixed-size pages
// (page.h) through a pluggable FileInterface backend; a learned sparse
// index over page min-keys (learned_index.h) keeps range queries at
// O(segments) + the covered pages.
//
// Durability: Flush() seals the buffered tail page and syncs the backend;
// everything appended before a returned-OK Flush survives a crash. On
// Open, data pages are scanned in order — a page that fails its checksum
// (torn final write) or breaks the dense key sequence ends the scan, and
// the file is truncated back to the last valid page: the store always
// reopens to a consistent prefix of what was appended.
//
// Thread safety: none. Callers serialize access (the serving layer wraps
// a store in a mutex-holding StoreSink).

#ifndef WEBRBD_STORE_RECORD_STORE_H_
#define WEBRBD_STORE_RECORD_STORE_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "store/file_interface.h"
#include "store/learned_index.h"
#include "store/page.h"
#include "store/record_codec.h"
#include "util/result.h"
#include "util/status.h"

namespace webrbd::store {

struct StoreOptions {
  /// Page size for a NEWLY created store file. Reopening an existing
  /// store always uses the size recorded in its superblock. Must lie in
  /// [kMinPageSize, kMaxPageSize].
  size_t page_size = 4096;
  /// Learned-index error bound (see learned_index.h).
  uint32_t index_epsilon = 4;
};

inline constexpr size_t kMinPageSize = 128;
inline constexpr size_t kMaxPageSize = 1 << 20;

/// Key-range plus optional decoded-record predicate for Scan.
struct ScanOptions {
  uint64_t min_key = 0;
  uint64_t max_key = std::numeric_limits<uint64_t>::max();  // inclusive
  /// Applied to each decoded in-range record; nullptr keeps everything.
  std::function<bool(const StoredRecord&)> filter;
};

class RecordStore {
 public:
  /// Opens a store over `file`. An empty backend is initialized fresh
  /// (superblock written); a non-empty one is recovered as described
  /// above. Fails with kParseError when the backend holds something that
  /// is not a store file, kInvalidArgument on a bad options.page_size.
  static Result<std::unique_ptr<RecordStore>> Open(
      std::unique_ptr<FileInterface> file, const StoreOptions& options = {});

  /// Appends one record and returns its assigned key. The record buffers
  /// in the tail page; a full tail is sealed to the backend
  /// automatically (without a sync — call Flush for durability). Fails
  /// with kInvalidArgument when the encoded record cannot fit any page.
  Result<uint64_t> Append(const StoredRecord& record);

  /// Seals the buffered tail page (if any) and syncs the backend. After
  /// an OK Flush every appended record is durable and visible to a fresh
  /// Open.
  [[nodiscard]] Status Flush();

  /// Streaming cursor over one Scan. Move-only; records the query
  /// latency histogram over its lifetime.
  class Iterator {
   public:
    /// Advances to the next matching record. Returns true and fills
    /// `*record` (and `*key` when non-null); returns false at the end
    /// OR on error — check status() to distinguish.
    bool Next(StoredRecord* record, uint64_t* key = nullptr);

    /// OK while iterating and at a clean end; the first I/O or parse
    /// error stops the iterator and is held here.
    const Status& status() const;

    Iterator(Iterator&&) noexcept;
    Iterator& operator=(Iterator&&) noexcept;
    ~Iterator();

   private:
    friend class RecordStore;
    struct State;
    explicit Iterator(std::unique_ptr<State> state);
    std::unique_ptr<State> state_;
  };

  /// Starts a key-range scan. The iterator sees every record appended
  /// before this call (including the unsealed tail, which is snapshotted)
  /// and must not outlive the store.
  Iterator Scan(const ScanOptions& options = {});

  /// Total records appended (== the next key to be assigned).
  uint64_t record_count() const { return next_key_; }
  /// Data pages sealed to the backend (excludes the buffered tail).
  uint64_t page_count() const { return page_count_; }
  /// Records buffered in the unsealed tail page.
  size_t pending_records() const { return pending_.size(); }
  /// Invalid tail pages dropped by recovery during Open.
  uint64_t torn_pages_recovered() const { return torn_pages_; }
  size_t index_segments() const { return index_.segment_count(); }
  size_t page_size() const { return page_size_; }
  std::string DebugName() const { return file_->DebugName(); }

  /// Passkey: only Open can mint one, so construction stays effectively
  /// private while make_unique keeps working.
  class Private {
   private:
    friend class RecordStore;
    Private() = default;
  };
  RecordStore(Private, std::unique_ptr<FileInterface> file, size_t page_size,
              uint32_t index_epsilon);

 private:

  /// Seals the buffered tail into the next data page (no sync).
  [[nodiscard]] Status SealTailPage();

  std::unique_ptr<FileInterface> file_;
  size_t page_size_;
  LearnedPageIndex index_;

  uint64_t next_key_ = 0;
  uint64_t page_count_ = 0;  // sealed data pages; file page = 1-based
  uint64_t torn_pages_ = 0;

  // Unsealed tail: encoded payloads and their running page footprint.
  std::vector<std::string> pending_;
  size_t pending_bytes_ = 0;
  std::string scratch_;     // encode buffer, reused across Appends
  std::string page_buffer_;  // page serialization buffer, reused
};

}  // namespace webrbd::store

#endif  // WEBRBD_STORE_RECORD_STORE_H_
