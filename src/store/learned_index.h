// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Learned sparse index over data-page min-keys, in the PGM/spline mold
// EmbedDB ships: a greedy error-bounded piecewise-linear model built
// online as pages are appended (the classic "shrinking cone" / FSW
// construction). Only the segments live in memory — O(segments), not
// O(pages) — and locating a key costs a binary search over segments plus
// a probe of at most 2*epsilon + 1 candidate pages.
//
// The model maps key -> data-page index. Page min-keys are strictly
// increasing (the store assigns keys as a dense ingest sequence), so for
// every key the true page is the last page whose min_key <= key; Locate
// returns a window guaranteed to contain that page.

#ifndef WEBRBD_STORE_LEARNED_INDEX_H_
#define WEBRBD_STORE_LEARNED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace webrbd::store {

class LearnedPageIndex {
 public:
  /// `epsilon` is the maximum page-prediction error the construction
  /// tolerates before closing a segment; larger values mean fewer
  /// segments but wider probe windows.
  explicit LearnedPageIndex(uint32_t epsilon = 4);

  /// Registers a data page. `min_key` must be strictly greater than the
  /// previous page's; `page_index` must be the previous plus one (pages
  /// are appended in key order). Violations are ignored rather than
  /// corrupting the model — the store never produces them.
  void Add(uint64_t min_key, uint64_t page_index);

  /// Inclusive page-index window certain to contain the last page whose
  /// min_key <= `key` (the only page that can hold `key`). Meaningless
  /// when empty() — callers check first.
  struct PageWindow {
    uint64_t first;
    uint64_t last;
  };
  PageWindow Locate(uint64_t key) const;

  bool empty() const { return !open_; }

  /// Number of linear segments, counting the one still under
  /// construction. This is the model's entire memory footprint.
  size_t segment_count() const {
    return segments_.size() + (open_ ? 1 : 0);
  }

  uint32_t epsilon() const { return epsilon_; }

 private:
  struct Segment {
    uint64_t base_key;
    uint64_t base_page;
    double slope;
  };

  uint32_t epsilon_;
  std::vector<Segment> segments_;

  // Segment under construction: shrinking slope cone [lo, hi].
  bool open_ = false;
  uint64_t open_base_key_ = 0;
  uint64_t open_base_page_ = 0;
  double open_slope_lo_ = 0.0;
  double open_slope_hi_ = 0.0;
  uint64_t last_key_ = 0;
  uint64_t last_page_ = 0;
};

}  // namespace webrbd::store

#endif  // WEBRBD_STORE_LEARNED_INDEX_H_
