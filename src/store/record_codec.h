// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Serialization of one populated record into a store-page payload.
//
// StoredRecord is the unit the extraction pipeline delivers through the
// RecordSink API (extract/record_sink.h aliases it as PopulatedRecord) and
// the unit the persistent store holds: one record of the paper's populated
// database — which document it came from, its ordinal within that
// document, the ontology entity, and the extracted (field name, value)
// pairs.
//
// Wire format (little-endian, variable length):
//
//   u32 document_index
//   u32 record_index
//   u16 entity length, then entity bytes
//   u16 field count
//   per field: u16 name length, name bytes, u32 value length, value bytes
//
// Values are arbitrary bytes (extracted text may be non-UTF8); names and
// entities are capped at u16 lengths, values at u32.

#ifndef WEBRBD_STORE_RECORD_CODEC_H_
#define WEBRBD_STORE_RECORD_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace webrbd::store {

/// One populated record: the pipeline's output unit and the store's
/// stored unit.
struct StoredRecord {
  /// Index of the source document within its corpus/batch (0-based).
  uint32_t document_index = 0;
  /// Ordinal of this record within its document (0-based).
  uint32_t record_index = 0;
  /// Ontology entity name (the table the record populates).
  std::string entity;
  /// Extracted (field name, value) pairs, in extraction order. Repeated
  /// names are allowed — plural fields contribute one pair per match.
  std::vector<std::pair<std::string, std::string>> fields;

  bool operator==(const StoredRecord& other) const {
    return document_index == other.document_index &&
           record_index == other.record_index && entity == other.entity &&
           fields == other.fields;
  }
};

/// Appends the serialized form of `record` to `*out` (the buffer is not
/// cleared, so callers can reuse one string across records). Fails with
/// kInvalidArgument when a name/entity exceeds u16 or a value exceeds u32
/// length.
[[nodiscard]] Status EncodeRecord(const StoredRecord& record,
                                  std::string* out);

/// Decodes one serialized record. Fails with kParseError on truncated or
/// malformed payloads.
Result<StoredRecord> DecodeRecord(std::string_view payload);

}  // namespace webrbd::store

#endif  // WEBRBD_STORE_RECORD_CODEC_H_
