// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "store/file_interface.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace webrbd::store {

namespace {

// ---------------------------------------------------------------- memory

class MemoryFile final : public FileInterface {
 public:
  MemoryFile() = default;
  explicit MemoryFile(std::string initial) : bytes_(std::move(initial)) {}

  Status ReadPage(uint64_t page_index, size_t page_size,
                  char* out) override {
    const uint64_t begin = page_index * page_size;
    if (begin + page_size > bytes_.size()) {
      return Status::NotFound("memory file: page " +
                              std::to_string(page_index) +
                              " beyond end of file");
    }
    std::memcpy(out, bytes_.data() + begin, page_size);
    return Status::OK();
  }

  Status WritePage(uint64_t page_index, size_t page_size,
                   const char* data) override {
    const uint64_t begin = page_index * page_size;
    if (begin + page_size > bytes_.size()) bytes_.resize(begin + page_size);
    std::memcpy(bytes_.data() + begin, data, page_size);
    return Status::OK();
  }

  Status Sync() override { return Status::OK(); }

  Result<uint64_t> SizeBytes() override {
    return static_cast<uint64_t>(bytes_.size());
  }

  Status Truncate(uint64_t bytes) override {
    if (bytes > bytes_.size()) {
      return Status::InvalidArgument("memory file: cannot truncate to grow");
    }
    bytes_.resize(bytes);
    return Status::OK();
  }

  std::string DebugName() const override { return "memory"; }

 private:
  std::string bytes_;
};

// ----------------------------------------------------------------- posix

class PosixFile final : public FileInterface {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status ReadPage(uint64_t page_index, size_t page_size,
                  char* out) override {
    const off_t offset = static_cast<off_t>(page_index * page_size);
    size_t done = 0;
    while (done < page_size) {
      const ssize_t n = ::pread(fd_, out + done, page_size - done,
                                offset + static_cast<off_t>(done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(path_ + ": pread: " +
                                std::strerror(errno));
      }
      if (n == 0) {
        // Short read: the page extends beyond the file (torn tail or an
        // out-of-range index). Never zero-fill — recovery must see this.
        return Status::NotFound(path_ + ": page " +
                                std::to_string(page_index) +
                                " beyond end of file");
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status WritePage(uint64_t page_index, size_t page_size,
                   const char* data) override {
    const off_t offset = static_cast<off_t>(page_index * page_size);
    size_t done = 0;
    while (done < page_size) {
      const ssize_t n = ::pwrite(fd_, data + done, page_size - done,
                                 offset + static_cast<off_t>(done));
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal(path_ + ": pwrite: " +
                                std::strerror(errno));
      }
      done += static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::Internal(path_ + ": fsync: " + std::strerror(errno));
    }
    return Status::OK();
  }

  Result<uint64_t> SizeBytes() override {
    const off_t end = ::lseek(fd_, 0, SEEK_END);
    if (end < 0) {
      return Status::Internal(path_ + ": lseek: " + std::strerror(errno));
    }
    return static_cast<uint64_t>(end);
  }

  Status Truncate(uint64_t bytes) override {
    if (::ftruncate(fd_, static_cast<off_t>(bytes)) != 0) {
      return Status::Internal(path_ + ": ftruncate: " +
                              std::strerror(errno));
    }
    return Status::OK();
  }

  std::string DebugName() const override { return path_; }

 private:
  int fd_;
  std::string path_;
};

}  // namespace

std::unique_ptr<FileInterface> MakeMemoryFile(std::string initial) {
  return std::make_unique<MemoryFile>(std::move(initial));
}

Result<std::unique_ptr<FileInterface>> OpenPosixFile(const std::string& path,
                                                     bool create) {
  int flags = O_RDWR;
  if (create) flags |= O_CREAT;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("store file not found: " + path);
    }
    return Status::InvalidArgument("cannot open " + path + ": " +
                                   std::strerror(errno));
  }
  return std::unique_ptr<FileInterface>(
      std::make_unique<PosixFile>(fd, path));
}

}  // namespace webrbd::store
