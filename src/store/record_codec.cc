// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "store/record_codec.h"

#include <limits>

#include "store/page.h"

namespace webrbd::store {

namespace {

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  StoreU32(buf, v);
  out->append(buf, 4);
}

class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool ReadU16(uint16_t* v) {
    if (data_.size() - pos_ < 2) return false;
    *v = static_cast<uint16_t>(
        static_cast<unsigned char>(data_[pos_]) |
        (static_cast<unsigned char>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return true;
  }

  bool ReadU32(uint32_t* v) {
    if (data_.size() - pos_ < 4) return false;
    *v = LoadU32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }

  bool ReadBytes(size_t n, std::string_view* v) {
    if (data_.size() - pos_ < n) return false;
    *v = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  bool exhausted() const { return pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace

Status EncodeRecord(const StoredRecord& record, std::string* out) {
  constexpr size_t kMaxShort = std::numeric_limits<uint16_t>::max();
  constexpr size_t kMaxValue = std::numeric_limits<uint32_t>::max();
  if (record.entity.size() > kMaxShort) {
    return Status::InvalidArgument("record entity name too long");
  }
  if (record.fields.size() > kMaxShort) {
    return Status::InvalidArgument("record has too many fields");
  }
  AppendU32(out, record.document_index);
  AppendU32(out, record.record_index);
  AppendU16(out, static_cast<uint16_t>(record.entity.size()));
  out->append(record.entity);
  AppendU16(out, static_cast<uint16_t>(record.fields.size()));
  for (const auto& [name, value] : record.fields) {
    if (name.size() > kMaxShort) {
      return Status::InvalidArgument("record field name too long");
    }
    if (value.size() > kMaxValue) {
      return Status::InvalidArgument("record field value too long");
    }
    AppendU16(out, static_cast<uint16_t>(name.size()));
    out->append(name);
    AppendU32(out, static_cast<uint32_t>(value.size()));
    out->append(value);
  }
  return Status::OK();
}

Result<StoredRecord> DecodeRecord(std::string_view payload) {
  Cursor cursor(payload);
  StoredRecord record;
  uint16_t short_len = 0;
  std::string_view bytes;
  if (!cursor.ReadU32(&record.document_index) ||
      !cursor.ReadU32(&record.record_index) ||
      !cursor.ReadU16(&short_len) ||
      !cursor.ReadBytes(short_len, &bytes)) {
    return Status::ParseError("truncated record header");
  }
  record.entity.assign(bytes);
  uint16_t field_count = 0;
  if (!cursor.ReadU16(&field_count)) {
    return Status::ParseError("truncated record field count");
  }
  record.fields.reserve(field_count);
  for (uint16_t i = 0; i < field_count; ++i) {
    uint32_t value_len = 0;
    std::string_view name;
    std::string_view value;
    if (!cursor.ReadU16(&short_len) || !cursor.ReadBytes(short_len, &name) ||
        !cursor.ReadU32(&value_len) || !cursor.ReadBytes(value_len, &value)) {
      return Status::ParseError("truncated record field");
    }
    record.fields.emplace_back(std::string(name), std::string(value));
  }
  if (!cursor.exhausted()) {
    return Status::ParseError("trailing bytes after record fields");
  }
  return record;
}

}  // namespace webrbd::store
