// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "store/record_store.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/stages.h"

namespace webrbd::store {

namespace {

constexpr size_t kSuperblockProbeBytes = 24;

}  // namespace

RecordStore::RecordStore(Private, std::unique_ptr<FileInterface> file,
                         size_t page_size, uint32_t index_epsilon)
    : file_(std::move(file)),
      page_size_(page_size),
      index_(index_epsilon) {
  page_buffer_.resize(page_size_);
}

Result<std::unique_ptr<RecordStore>> RecordStore::Open(
    std::unique_ptr<FileInterface> file, const StoreOptions& options) {
  if (options.page_size < kMinPageSize ||
      options.page_size > kMaxPageSize) {
    return Status::InvalidArgument("store page size out of range");
  }
  uint64_t size = 0;
  WEBRBD_ASSIGN_OR_RETURN(size, file->SizeBytes());

  size_t page_size = options.page_size;
  if (size == 0) {
    // Fresh store: lay down the superblock.
    std::string superblock(page_size, '\0');
    EncodeSuperblock(page_size, superblock.data());
    Status written = file->WritePage(0, page_size, superblock.data());
    if (!written.ok()) return written;
    Status synced = file->Sync();
    if (!synced.ok()) return synced;
  } else {
    char probe[kSuperblockProbeBytes];
    Status read = file->ReadPage(0, kSuperblockProbeBytes, probe);
    if (!read.ok()) {
      return Status::ParseError("not a store file: " + read.message());
    }
    WEBRBD_ASSIGN_OR_RETURN(page_size,
                            ParseSuperblock(probe, kSuperblockProbeBytes));
  }

  auto store = std::make_unique<RecordStore>(
      Private{}, std::move(file), page_size, options.index_epsilon);

  // Recovery scan: walk data pages in order, rebuild the learned index,
  // and stop at the first page that is torn (checksum), missing (beyond
  // EOF), or out of key sequence. Everything from that page on is
  // dropped so the store reopens to a consistent prefix.
  const obs::StoreMetrics& metrics = obs::Store();
  uint64_t page = 1;
  for (;; ++page) {
    Status read = store->file_->ReadPage(page, page_size,
                                         store->page_buffer_.data());
    if (!read.ok()) break;  // beyond EOF: clean end or torn partial page
    metrics.pages_read->Increment();
    Result<PageReader> parsed =
        PageReader::Parse(store->page_buffer_.data(), page_size);
    if (!parsed.ok()) break;  // torn or corrupt page
    if (parsed->min_key() != store->next_key_) break;  // sequence break
    store->index_.Add(parsed->min_key(), page);
    store->next_key_ = parsed->max_key() + 1;
    store->page_count_ = page;
  }
  const uint64_t valid_bytes = (store->page_count_ + 1) * page_size;
  if (size > valid_bytes) {
    store->torn_pages_ = (size - valid_bytes + page_size - 1) / page_size;
    metrics.torn_pages->Increment(store->torn_pages_);
    Status truncated = store->file_->Truncate(valid_bytes);
    if (!truncated.ok()) return truncated;
    Status synced = store->file_->Sync();
    if (!synced.ok()) return synced;
  }
  metrics.index_segments->Set(
      static_cast<double>(store->index_.segment_count()));
  return store;
}

Result<uint64_t> RecordStore::Append(const StoredRecord& record) {
  scratch_.clear();
  Status encoded = EncodeRecord(record, &scratch_);
  if (!encoded.ok()) return encoded;
  if (scratch_.size() > MaxRecordPayload(page_size_)) {
    return Status::InvalidArgument(
        "record payload (" + std::to_string(scratch_.size()) +
        " bytes) exceeds page capacity of " + DebugName());
  }
  const size_t footprint = kRecordLengthBytes + scratch_.size();
  if (kPageHeaderBytes + pending_bytes_ + footprint > page_size_) {
    Status sealed = SealTailPage();
    if (!sealed.ok()) return sealed;
  }
  pending_.push_back(scratch_);
  pending_bytes_ += footprint;
  const uint64_t key = next_key_++;
  obs::Store().records->Increment();
  return key;
}

Status RecordStore::SealTailPage() {
  if (pending_.empty()) return Status::OK();
  PageBuilder builder(page_size_);
  const uint64_t base_key = next_key_ - pending_.size();
  for (size_t i = 0; i < pending_.size(); ++i) {
    Status appended = builder.Append(base_key + i, pending_[i]);
    if (!appended.ok()) return appended;
  }
  builder.Finish(page_buffer_.data());
  const uint64_t page = page_count_ + 1;
  Status written = file_->WritePage(page, page_size_, page_buffer_.data());
  if (!written.ok()) return written;
  page_count_ = page;
  index_.Add(base_key, page);
  pending_.clear();
  pending_bytes_ = 0;
  const obs::StoreMetrics& metrics = obs::Store();
  metrics.pages_written->Increment();
  metrics.index_segments->Set(static_cast<double>(index_.segment_count()));
  return Status::OK();
}

Status RecordStore::Flush() {
  Status sealed = SealTailPage();
  if (!sealed.ok()) return sealed;
  Status synced = file_->Sync();
  if (!synced.ok()) return synced;
  obs::Store().flushes->Increment();
  return Status::OK();
}

// -------------------------------------------------------------- Iterator

struct RecordStore::Iterator::State {
  RecordStore* store = nullptr;
  ScanOptions options;
  Status status = Status::OK();

  // Sealed-page cursor.
  uint64_t page = 0;           // next file page to read; 0 = done with pages
  uint64_t last_page = 0;      // last sealed page at Scan time
  std::string page_buffer;
  Result<PageReader> reader = Status::NotFound("unset");
  uint32_t record_in_page = 0;
  bool page_loaded = false;

  // Snapshot of the unsealed tail at Scan time.
  std::vector<std::string> tail;
  uint64_t tail_base_key = 0;
  size_t tail_index = 0;

  std::chrono::steady_clock::time_point start =
      std::chrono::steady_clock::now();
  bool observed = false;

  void ObserveLatency() {
    if (observed) return;
    observed = true;
    const auto elapsed = std::chrono::steady_clock::now() - start;
    obs::Store().query_latency->ObserveNanos(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
  }
};

RecordStore::Iterator::Iterator(std::unique_ptr<State> state)
    : state_(std::move(state)) {}

RecordStore::Iterator::Iterator(Iterator&&) noexcept = default;
RecordStore::Iterator& RecordStore::Iterator::operator=(Iterator&&) noexcept =
    default;

RecordStore::Iterator::~Iterator() {
  if (state_ != nullptr) state_->ObserveLatency();
}

const Status& RecordStore::Iterator::status() const {
  return state_->status;
}

bool RecordStore::Iterator::Next(StoredRecord* record, uint64_t* key) {
  State& s = *state_;
  if (!s.status.ok()) return false;
  const obs::StoreMetrics& metrics = obs::Store();
  for (;;) {
    // Drain the current page.
    if (s.page_loaded) {
      const PageReader& reader = *s.reader;
      while (s.record_in_page < reader.record_count()) {
        const uint32_t i = s.record_in_page++;
        const uint64_t record_key = reader.key(i);
        if (record_key < s.options.min_key) continue;
        if (record_key > s.options.max_key) {
          s.ObserveLatency();
          return false;  // keys are sorted: nothing further can match
        }
        Result<StoredRecord> decoded = DecodeRecord(reader.payload(i));
        if (!decoded.ok()) {
          s.status = decoded.status();
          s.ObserveLatency();
          return false;
        }
        if (s.options.filter && !s.options.filter(*decoded)) continue;
        *record = std::move(decoded).value();
        if (key != nullptr) *key = record_key;
        return true;
      }
      s.page_loaded = false;
      ++s.page;
    }
    // Load the next sealed page, if any remain in range.
    if (s.page != 0 && s.page <= s.last_page) {
      Status read = s.store->file_->ReadPage(s.page, s.store->page_size_,
                                             s.page_buffer.data());
      if (!read.ok()) {
        s.status = read;
        s.ObserveLatency();
        return false;
      }
      metrics.pages_read->Increment();
      s.reader = PageReader::Parse(s.page_buffer.data(),
                                   s.store->page_size_);
      if (!s.reader.ok()) {
        s.status = s.reader.status();
        s.ObserveLatency();
        return false;
      }
      if (s.reader->min_key() > s.options.max_key) {
        s.page = 0;  // whole page past the range: tail cannot match either
        s.tail_index = s.tail.size();
        s.ObserveLatency();
        return false;
      }
      s.record_in_page = 0;
      s.page_loaded = true;
      continue;
    }
    s.page = 0;
    // Drain the tail snapshot.
    while (s.tail_index < s.tail.size()) {
      const size_t i = s.tail_index++;
      const uint64_t record_key = s.tail_base_key + i;
      if (record_key < s.options.min_key) continue;
      if (record_key > s.options.max_key) break;
      Result<StoredRecord> decoded = DecodeRecord(s.tail[i]);
      if (!decoded.ok()) {
        s.status = decoded.status();
        s.ObserveLatency();
        return false;
      }
      if (s.options.filter && !s.options.filter(*decoded)) continue;
      *record = std::move(decoded).value();
      if (key != nullptr) *key = record_key;
      return true;
    }
    s.ObserveLatency();
    return false;
  }
}

RecordStore::Iterator RecordStore::Scan(const ScanOptions& options) {
  auto state = std::make_unique<Iterator::State>();
  state->store = this;
  state->options = options;
  state->page_buffer.resize(page_size_);
  state->last_page = page_count_;
  state->tail = pending_;
  state->tail_base_key = next_key_ - pending_.size();

  if (page_count_ == 0 || index_.empty()) {
    state->page = 0;  // no sealed pages: tail only
    return Iterator(std::move(state));
  }

  // Find the start page: the last sealed page whose min_key <= min_key
  // bound. The learned index narrows this to a small window; a binary
  // search inside the window (reading only those pages) pins it down.
  // Landing early is harmless (the iterator skips out-of-range keys), so
  // only "any page with min_key <= bound, as late as possible" matters.
  const obs::StoreMetrics& metrics = obs::Store();
  LearnedPageIndex::PageWindow window = index_.Locate(options.min_key);
  window.first = std::max<uint64_t>(window.first, 1);
  window.last = std::min<uint64_t>(window.last, page_count_);
  uint64_t start = 0;
  uint64_t lo = window.first;
  uint64_t hi = window.last;
  while (lo <= hi) {
    const uint64_t mid = lo + (hi - lo) / 2;
    Status read = file_->ReadPage(mid, page_size_,
                                  state->page_buffer.data());
    if (!read.ok()) {
      state->status = read;
      return Iterator(std::move(state));
    }
    metrics.pages_read->Increment();
    Result<PageReader> parsed =
        PageReader::Parse(state->page_buffer.data(), page_size_);
    if (!parsed.ok()) {
      state->status = parsed.status();
      return Iterator(std::move(state));
    }
    if (parsed->min_key() <= options.min_key) {
      start = mid;
      lo = mid + 1;
    } else {
      if (mid == 0) break;
      hi = mid - 1;
    }
  }
  // The model's window can, in principle, sit entirely past the true
  // page; walk back until a page qualifies. (Page 1 always does: its
  // min_key is 0.)
  while (start == 0 && window.first > 1) {
    --window.first;
    Status read = file_->ReadPage(window.first, page_size_,
                                  state->page_buffer.data());
    if (!read.ok()) {
      state->status = read;
      return Iterator(std::move(state));
    }
    metrics.pages_read->Increment();
    Result<PageReader> parsed =
        PageReader::Parse(state->page_buffer.data(), page_size_);
    if (!parsed.ok()) {
      state->status = parsed.status();
      return Iterator(std::move(state));
    }
    if (parsed->min_key() <= options.min_key) start = window.first;
  }
  if (start == 0) start = 1;
  state->page = start;
  return Iterator(std::move(state));
}

}  // namespace webrbd::store
