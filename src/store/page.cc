// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "store/page.h"

#include <cassert>
#include <cstring>

#include "util/fnv.h"

namespace webrbd::store {

namespace {

constexpr size_t kSuperblockHeaderBytes = 24;  // magic,version,page_size,
                                               // reserved, checksum

// Checksum over a fully serialized page with its checksum field (bytes
// 32..40) treated as zero. Only header + payload participate; the zero
// padding cannot influence it, so padding garbage is harmless.
uint64_t PageChecksum(const char* page, uint32_t payload_bytes) {
  FnvHasher h;
  h.AddBytes(std::string_view(page, 32));
  h.AddU64(0);  // stands in for the zeroed checksum field
  h.AddBytes(std::string_view(page + kPageHeaderBytes, payload_bytes));
  return h.hash();
}

uint64_t SuperblockChecksum(const char* page) {
  FnvHasher h;
  h.AddBytes(std::string_view(page, 16));
  return h.hash();
}

}  // namespace

void StoreU32(char* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void StoreU64(char* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

uint32_t LoadU32(const char* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

uint64_t LoadU64(const char* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

// ----------------------------------------------------------- PageBuilder

PageBuilder::PageBuilder(size_t page_size) : page_size_(page_size) {
  assert(page_size_ > kPageHeaderBytes + kRecordLengthBytes);
  payload_.reserve(page_size_ - kPageHeaderBytes);
}

bool PageBuilder::Fits(size_t payload_len) const {
  return kPageHeaderBytes + payload_.size() + kRecordLengthBytes +
             payload_len <=
         page_size_;
}

Status PageBuilder::Append(uint64_t key, std::string_view payload) {
  if (!Fits(payload.size())) {
    return Status::ResourceExhausted("page full");
  }
  if (record_count_ == 0) {
    min_key_ = key;
  } else if (key != min_key_ + record_count_) {
    return Status::InvalidArgument("non-dense key in page");
  }
  char len[kRecordLengthBytes];
  StoreU32(len, static_cast<uint32_t>(payload.size()));
  payload_.append(len, kRecordLengthBytes);
  payload_.append(payload);
  ++record_count_;
  return Status::OK();
}

void PageBuilder::Finish(char* out) const {
  assert(record_count_ > 0);
  std::memset(out, 0, page_size_);
  StoreU32(out + 0, kPageMagic);
  StoreU32(out + 4, record_count_);
  StoreU64(out + 8, min_key_);
  StoreU64(out + 16, max_key());
  StoreU32(out + 24, static_cast<uint32_t>(payload_.size()));
  // bytes 28..32 reserved, already zero
  std::memcpy(out + kPageHeaderBytes, payload_.data(), payload_.size());
  StoreU64(out + 32,
           PageChecksum(out, static_cast<uint32_t>(payload_.size())));
}

void PageBuilder::Reset() {
  record_count_ = 0;
  min_key_ = 0;
  payload_.clear();
}

// ------------------------------------------------------------ PageReader

Result<PageReader> PageReader::Parse(const char* data, size_t page_size) {
  if (page_size <= kPageHeaderBytes) {
    return Status::ParseError("page smaller than header");
  }
  if (LoadU32(data + 0) != kPageMagic) {
    return Status::ParseError("bad page magic");
  }
  const uint32_t count = LoadU32(data + 4);
  const uint64_t min_key = LoadU64(data + 8);
  const uint64_t max_key = LoadU64(data + 16);
  const uint32_t payload_bytes = LoadU32(data + 24);
  const uint64_t checksum = LoadU64(data + 32);
  if (count == 0 || payload_bytes > page_size - kPageHeaderBytes) {
    return Status::ParseError("page header out of bounds");
  }
  if (max_key != min_key + count - 1) {
    return Status::ParseError("page key range inconsistent with count");
  }
  if (checksum != PageChecksum(data, payload_bytes)) {
    return Status::ParseError("page checksum mismatch");
  }
  PageReader reader;
  reader.record_count_ = count;
  reader.min_key_ = min_key;
  reader.max_key_ = max_key;
  reader.payloads_.reserve(count);
  size_t offset = kPageHeaderBytes;
  const size_t end = kPageHeaderBytes + payload_bytes;
  for (uint32_t i = 0; i < count; ++i) {
    if (offset + kRecordLengthBytes > end) {
      return Status::ParseError("record length prefix past payload end");
    }
    const uint32_t len = LoadU32(data + offset);
    offset += kRecordLengthBytes;
    if (offset + len > end) {
      return Status::ParseError("record payload past payload end");
    }
    reader.payloads_.emplace_back(data + offset, len);
    offset += len;
  }
  if (offset != end) {
    return Status::ParseError("payload bytes beyond last record");
  }
  return reader;
}

// ------------------------------------------------------------ superblock

void EncodeSuperblock(size_t page_size, char* out) {
  std::memset(out, 0, page_size);
  StoreU32(out + 0, kSuperblockMagic);
  StoreU32(out + 4, kFormatVersion);
  StoreU32(out + 8, static_cast<uint32_t>(page_size));
  // bytes 12..16 reserved, already zero
  StoreU64(out + 16, SuperblockChecksum(out));
}

Result<size_t> ParseSuperblock(const char* data, size_t bytes_available) {
  if (bytes_available < kSuperblockHeaderBytes) {
    return Status::ParseError("file too short for a store superblock");
  }
  if (LoadU32(data + 0) != kSuperblockMagic) {
    return Status::ParseError("bad superblock magic (not a store file)");
  }
  if (LoadU32(data + 4) != kFormatVersion) {
    return Status::ParseError("unsupported store format version");
  }
  if (LoadU64(data + 16) != SuperblockChecksum(data)) {
    return Status::ParseError("superblock checksum mismatch");
  }
  const uint32_t page_size = LoadU32(data + 8);
  if (page_size <= kPageHeaderBytes + kRecordLengthBytes) {
    return Status::ParseError("superblock page size too small");
  }
  return static_cast<size_t>(page_size);
}

}  // namespace webrbd::store
