// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// The pluggable storage-backend abstraction under the persistent record
// store (store/record_store.h), in the EmbedDB mold: the store reads and
// writes fixed-size pages through this interface and never touches a file
// API directly, so backends swap behind one contract.
//
// Two backends ship:
//   - MakeMemoryFile():  a std::string-backed volatile backend. Used by
//     tests (backend-swap golden equivalence) and by benchmarks that want
//     to measure the store's CPU cost without the kernel in the loop.
//   - OpenPosixFile():   a pread/pwrite/fsync-backed durable backend for
//     production store files.
//
// Contract (what RecordStore relies on, and what a new backend must
// honor — see docs/storage.md):
//   - Pages are addressed by index; byte offset = page_index * page_size.
//     The page size is chosen by the caller and constant per file.
//   - WritePage must be atomic with respect to SUBSEQUENT reads from this
//     process (read-your-writes). It need NOT be atomic with respect to a
//     crash: a torn final page is expected and rejected by the store's
//     checksum on recovery.
//   - Sync() must not return OK until every completed WritePage is
//     durable (fsync semantics; a no-op for the memory backend).
//   - ReadPage of a page that was never fully written (beyond
//     SizeBytes()) must fail rather than fabricate zeros.

#ifndef WEBRBD_STORE_FILE_INTERFACE_H_
#define WEBRBD_STORE_FILE_INTERFACE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/result.h"
#include "util/status.h"

namespace webrbd::store {

/// Page-granular storage backend. Instances are NOT thread-safe; the
/// owning RecordStore serializes access.
class FileInterface {
 public:
  virtual ~FileInterface() = default;

  /// Reads the `page_size` bytes of page `page_index` into `out`. Fails
  /// with kNotFound when the page lies wholly or partly beyond the current
  /// file size (short final pages must surface, not zero-fill).
  [[nodiscard]] virtual Status ReadPage(uint64_t page_index, size_t page_size,
                                        char* out) = 0;

  /// Writes the `page_size` bytes at `data` as page `page_index`,
  /// extending the file as needed. Overwrites are allowed.
  [[nodiscard]] virtual Status WritePage(uint64_t page_index,
                                         size_t page_size,
                                         const char* data) = 0;

  /// Makes every completed WritePage durable (fsync for the POSIX
  /// backend; no-op for memory).
  [[nodiscard]] virtual Status Sync() = 0;

  /// Current backing size in bytes. Not necessarily a page multiple — a
  /// torn final page after a crash is shorter, and recovery uses this to
  /// find it.
  [[nodiscard]] virtual Result<uint64_t> SizeBytes() = 0;

  /// Truncates the backing storage to exactly `bytes` (recovery drops a
  /// torn tail this way).
  [[nodiscard]] virtual Status Truncate(uint64_t bytes) = 0;

  /// Human-readable identity for error messages ("memory", a path, ...).
  virtual std::string DebugName() const = 0;
};

/// An in-memory backend, starting from `initial` (empty by default). The
/// seeded form lets tests snapshot a store's bytes and "reopen" over them
/// — the memory analogue of closing and reopening a disk file.
std::unique_ptr<FileInterface> MakeMemoryFile(std::string initial = {});

/// Opens (or, when `create` is true, creates) a POSIX-file backend at
/// `path`. Fails with kNotFound when the file is absent and `create` is
/// false, kInvalidArgument when the path cannot be opened read-write.
[[nodiscard]] Result<std::unique_ptr<FileInterface>> OpenPosixFile(
    const std::string& path, bool create);

}  // namespace webrbd::store

#endif  // WEBRBD_STORE_FILE_INTERFACE_H_
