// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "eval/experiments.h"

#include <algorithm>

#include "ontology/estimator.h"

namespace webrbd::eval {

int DocEvaluation::CorrectRank(const std::string& heuristic) const {
  for (const HeuristicResult& result : results) {
    if (result.heuristic_name != heuristic) continue;
    int best = 0;
    for (const std::string& separator : correct_separators) {
      const int rank = result.RankOf(separator);
      if (rank > 0 && (best == 0 || rank < best)) best = rank;
    }
    return best;
  }
  return 0;
}

std::vector<CompoundRankedTag> DocEvaluation::Combine(
    const std::string& letters, const CertaintyFactorTable& table) const {
  auto names = RecordBoundaryDiscoverer::ParseHeuristicLetters(letters);
  std::vector<HeuristicResult> subset;
  if (names.ok()) {
    for (const std::string& name : *names) {
      for (const HeuristicResult& result : results) {
        if (result.heuristic_name == name) subset.push_back(result);
      }
    }
  }
  return CombineHeuristicResults(subset, table, analysis);
}

int DocEvaluation::CompoundCorrectRank(
    const std::vector<CompoundRankedTag>& ranking) const {
  int best = 0;
  for (const std::string& separator : correct_separators) {
    double certainty = -1.0;
    bool found = false;
    for (const CompoundRankedTag& entry : ranking) {
      if (entry.tag == separator) {
        certainty = entry.certainty;
        found = true;
        break;
      }
    }
    if (!found) continue;
    // Competition rank: 1 + number of tags with strictly higher certainty.
    int rank = 1;
    for (const CompoundRankedTag& entry : ranking) {
      if (entry.certainty > certainty) ++rank;
    }
    if (best == 0 || rank < best) best = rank;
  }
  return best;
}

double DocEvaluation::SuccessScore(
    const std::vector<CompoundRankedTag>& ranking) const {
  const std::vector<std::string> tied = TiedBestTags(ranking);
  if (tied.empty()) return 0.0;
  size_t correct = 0;
  for (const std::string& tag : tied) {
    for (const std::string& separator : correct_separators) {
      if (tag == separator) {
        ++correct;
        break;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(tied.size());
}

Result<std::vector<DocEvaluation>> EvaluateCorpus(
    const std::vector<gen::GeneratedDocument>& corpus, Domain domain) {
  auto ontology = BundledOntology(domain);
  if (!ontology.ok()) return ontology.status();
  auto estimator = MakeEstimatorForOntology(*ontology);
  if (!estimator.ok()) return estimator.status();

  StandaloneDiscoveryOptions options;
  options.heuristics = "ORSIH";
  options.estimator = std::move(estimator).value();
  RecordBoundaryDiscoverer discoverer(options);

  std::vector<DocEvaluation> evaluations;
  evaluations.reserve(corpus.size());
  for (const gen::GeneratedDocument& doc : corpus) {
    auto tree = BuildTagTree(doc.html);
    if (!tree.ok()) return tree.status();
    auto discovery = discoverer.Discover(*tree);
    if (!discovery.ok()) {
      return Status::Internal("discovery failed on " + doc.site_name + " (" +
                              DomainName(doc.domain) +
                              "): " + discovery.status().ToString());
    }
    DocEvaluation evaluation;
    evaluation.site_name = doc.site_name;
    evaluation.correct_separators = doc.correct_separators;
    evaluation.analysis = std::move(discovery->analysis);
    evaluation.analysis.subtree = nullptr;  // the tag tree dies here
    evaluation.results = std::move(discovery->heuristic_results);
    evaluations.push_back(std::move(evaluation));
  }
  return evaluations;
}

std::vector<RankDistributionRow> RankDistribution(
    const std::vector<DocEvaluation>& evaluations) {
  std::vector<RankDistributionRow> rows;
  for (const char* heuristic : kHeuristicOrder) {
    RankDistributionRow row;
    row.heuristic = heuristic;
    for (const DocEvaluation& evaluation : evaluations) {
      const int rank = evaluation.CorrectRank(heuristic);
      if (rank >= 1 && rank <= 4) {
        row.rank_fraction[static_cast<size_t>(rank - 1)] += 1.0;
      } else {
        row.none_fraction += 1.0;
      }
    }
    const double n = static_cast<double>(evaluations.size());
    if (n > 0) {
      for (double& f : row.rank_fraction) f /= n;
      row.none_fraction /= n;
    }
    rows.push_back(row);
  }
  return rows;
}

CertaintyFactorTable DeriveCertaintyFactors(
    const std::vector<std::vector<RankDistributionRow>>& distributions) {
  CertaintyFactorTable table;
  for (const char* heuristic : kHeuristicOrder) {
    std::array<double, CertaintyFactorTable::kDepth> factors = {0, 0, 0, 0};
    size_t count = 0;
    for (const auto& rows : distributions) {
      for (const RankDistributionRow& row : rows) {
        if (row.heuristic != heuristic) continue;
        for (size_t r = 0; r < factors.size(); ++r) {
          factors[r] += row.rank_fraction[r];
        }
        ++count;
      }
    }
    if (count > 0) {
      for (double& f : factors) f /= static_cast<double>(count);
    }
    table.Set(heuristic, factors);
  }
  return table;
}

std::vector<CombinationSuccess> CombinationSweep(
    const std::vector<DocEvaluation>& evaluations,
    const CertaintyFactorTable& table) {
  std::vector<CombinationSuccess> results;
  for (const std::string& combo : RecordBoundaryDiscoverer::AllCombinations()) {
    double total = 0.0;
    for (const DocEvaluation& evaluation : evaluations) {
      total += evaluation.SuccessScore(evaluation.Combine(combo, table));
    }
    results.push_back(CombinationSuccess{
        combo, evaluations.empty()
                   ? 0.0
                   : total / static_cast<double>(evaluations.size())});
  }
  return results;
}

Result<std::vector<TestSiteRow>> RunTestSet(Domain domain,
                                            const std::string& letters,
                                            const CertaintyFactorTable& table) {
  const std::vector<gen::GeneratedDocument> corpus =
      gen::GenerateTestCorpus(domain);
  auto evaluations = EvaluateCorpus(corpus, domain);
  if (!evaluations.ok()) return evaluations.status();

  const auto& sites = gen::TestSites(domain);
  std::vector<TestSiteRow> rows;
  for (size_t i = 0; i < evaluations->size(); ++i) {
    const DocEvaluation& evaluation = (*evaluations)[i];
    TestSiteRow row;
    row.site_name = evaluation.site_name;
    row.url = i < sites.size() ? sites[i].url : "";
    for (const char* heuristic : kHeuristicOrder) {
      row.heuristic_rank[heuristic] = evaluation.CorrectRank(heuristic);
    }
    row.compound_rank =
        evaluation.CompoundCorrectRank(evaluation.Combine(letters, table));
    rows.push_back(std::move(row));
  }
  return rows;
}

SuccessSummary SummarizeSuccess(const std::vector<DocEvaluation>& evaluations,
                                const std::string& letters,
                                const CertaintyFactorTable& table) {
  SuccessSummary summary;
  const double n = static_cast<double>(evaluations.size());
  for (const char* heuristic : kHeuristicOrder) {
    double hits = 0.0;
    for (const DocEvaluation& evaluation : evaluations) {
      if (evaluation.CorrectRank(heuristic) == 1) hits += 1.0;
    }
    summary.individual[heuristic] = n > 0 ? hits / n : 0.0;
  }
  double total = 0.0;
  for (const DocEvaluation& evaluation : evaluations) {
    total += evaluation.SuccessScore(evaluation.Combine(letters, table));
  }
  summary.compound = n > 0 ? total / n : 0.0;
  return summary;
}

}  // namespace webrbd::eval
