// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "eval/extraction_quality.h"

#include "core/record_extractor.h"
#include "extract/db_instance_generator.h"
#include "ontology/estimator.h"

namespace webrbd::eval {

double ExtractionQualityReport::OverallRecall() const {
  size_t truth = 0;
  size_t correct = 0;
  for (const auto& [name, quality] : per_field) {
    truth += quality.truth_count;
    correct += quality.correct_count;
  }
  return truth == 0 ? 1.0
                    : static_cast<double>(correct) / static_cast<double>(truth);
}

double ExtractionQualityReport::OverallPrecision() const {
  size_t extracted = 0;
  size_t correct = 0;
  for (const auto& [name, quality] : per_field) {
    extracted += quality.extracted_count;
    correct += quality.correct_count;
  }
  return extracted == 0 ? 1.0
                        : static_cast<double>(correct) /
                              static_cast<double>(extracted);
}

namespace {

// Scores one record's extracted fields against its ground truth. Both are
// (object set, value) multisets; a correct extraction is a value the truth
// lists for that object set (consumed once, so duplicates must each be
// earned).
void ScoreRecord(
    const std::vector<std::pair<std::string, std::string>>& truth,
    const std::vector<std::pair<std::string, std::string>>& extracted,
    std::map<std::string, FieldQuality>* per_field) {
  std::multimap<std::string, std::string> unclaimed;
  for (const auto& [name, value] : truth) {
    (*per_field)[name].truth_count++;
    unclaimed.emplace(name, value);
  }
  for (const auto& [name, value] : extracted) {
    FieldQuality& quality = (*per_field)[name];
    quality.extracted_count++;
    auto [begin, end] = unclaimed.equal_range(name);
    for (auto it = begin; it != end; ++it) {
      if (it->second == value) {
        quality.correct_count++;
        unclaimed.erase(it);
        break;
      }
    }
  }
}

}  // namespace

Result<ExtractionQualityReport> MeasureExtractionQuality(
    Domain domain, const std::vector<gen::GeneratedDocument>& corpus) {
  auto ontology = BundledOntology(domain);
  if (!ontology.ok()) return ontology.status();
  auto estimator = MakeEstimatorForOntology(*ontology);
  if (!estimator.ok()) return estimator.status();
  auto generator = DatabaseInstanceGenerator::Create(*ontology);
  if (!generator.ok()) return generator.status();

  StandaloneDiscoveryOptions options;
  options.estimator = std::move(estimator).value();

  ExtractionQualityReport report;
  report.domain = domain;
  for (const gen::GeneratedDocument& doc : corpus) {
    auto records = ExtractRecordsFromDocument(doc.html, options);
    if (!records.ok()) return records.status();
    ++report.documents;
    if (records->size() != doc.record_fields.size()) {
      // Misaligned chunking (merged header, off-by-one layouts): skip the
      // document rather than scoring shifted records.
      report.records_skipped += doc.record_fields.size();
      continue;
    }
    for (size_t i = 0; i < records->size(); ++i) {
      ScoreRecord(doc.record_fields[i],
                  generator->FieldsForRecord((*records)[i].text),
                  &report.per_field);
      ++report.records_scored;
    }
  }
  return report;
}

}  // namespace webrbd::eval
