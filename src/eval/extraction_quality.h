// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Field-level extraction quality: recall and precision of the full
// Figure 1 pipeline against the generator's ground-truth facts. This
// reproduces the paper's Section 2 context numbers — the authors report
// "recall ratios in the range of 90% and precision ratios near 95%
// (except for names in obituaries, which had precision ratios near 75%)"
// for the surrounding extraction system.

#ifndef WEBRBD_EVAL_EXTRACTION_QUALITY_H_
#define WEBRBD_EVAL_EXTRACTION_QUALITY_H_

#include <map>
#include <string>
#include <vector>

#include "gen/sites.h"
#include "ontology/bundled.h"
#include "util/result.h"

namespace webrbd::eval {

/// Tallies for one object set.
struct FieldQuality {
  size_t truth_count = 0;      ///< ground-truth values present
  size_t extracted_count = 0;  ///< values the pipeline produced
  size_t correct_count = 0;    ///< extracted values equal to the truth

  double Recall() const {
    return truth_count == 0
               ? 1.0
               : static_cast<double>(correct_count) /
                     static_cast<double>(truth_count);
  }
  double Precision() const {
    return extracted_count == 0
               ? 1.0
               : static_cast<double>(correct_count) /
                     static_cast<double>(extracted_count);
  }
};

/// Quality report for one domain.
struct ExtractionQualityReport {
  Domain domain = Domain::kObituaries;
  std::map<std::string, FieldQuality> per_field;
  size_t documents = 0;
  size_t records_scored = 0;
  size_t records_skipped = 0;  ///< misaligned chunks (e.g. merged headers)

  /// Micro-averaged recall/precision over every field occurrence.
  double OverallRecall() const;
  double OverallPrecision() const;
};

/// Runs the full pipeline (record separation with the domain ontology's
/// estimator, extraction, recognition, instance generation) over `corpus`
/// and scores every record's fields against the generator's ground truth.
///
/// Records are aligned by index when the pipeline recovers exactly the
/// ground-truth record count; misaligned documents contribute to
/// `records_skipped` instead of polluting the field tallies.
[[nodiscard]] Result<ExtractionQualityReport> MeasureExtractionQuality(
    Domain domain, const std::vector<gen::GeneratedDocument>& corpus);

}  // namespace webrbd::eval

#endif  // WEBRBD_EVAL_EXTRACTION_QUALITY_H_
