// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Experiment harness regenerating the paper's evaluation:
//   Tables 2/3  — per-heuristic rank distributions on the calibration corpora
//   Table 4     — certainty factors averaged from Tables 2 and 3
//   Table 5     — success rates of all 26 heuristic combinations
//   Tables 6-9  — per-site ranks on the four test sets
//   Table 10    — summary success rates (individual heuristics vs ORSIH)

#ifndef WEBRBD_EVAL_EXPERIMENTS_H_
#define WEBRBD_EVAL_EXPERIMENTS_H_

#include <array>
#include <map>
#include <string>
#include <vector>

#include "core/certainty.h"
#include "core/discovery.h"
#include "gen/sites.h"
#include "ontology/bundled.h"
#include "util/result.h"

namespace webrbd::eval {

/// The five heuristics in the paper's row order.
inline const char* kHeuristicOrder[] = {"OM", "RP", "SD", "IT", "HT"};

/// Everything the harness needs from one document, computed once: the
/// candidate tags, all five heuristic rankings, and the ground truth.
/// (analysis.subtree is nulled — the tag tree is not retained.)
struct DocEvaluation {
  std::string site_name;
  std::vector<std::string> correct_separators;
  CandidateAnalysis analysis;
  std::vector<HeuristicResult> results;  // OM, RP, SD, IT, HT

  /// Best (smallest) rank any correct separator achieved under the named
  /// heuristic; 0 when the heuristic ranked no correct separator.
  int CorrectRank(const std::string& heuristic) const;

  /// Compound certainty ranking for a subset of heuristics (letter string),
  /// using `table` for the certainty factors.
  std::vector<CompoundRankedTag> Combine(const std::string& letters,
                                         const CertaintyFactorTable& table) const;

  /// Competition rank (1-based) of the best correct separator in a
  /// compound ranking; 0 when absent.
  int CompoundCorrectRank(const std::vector<CompoundRankedTag>& ranking) const;

  /// The paper's per-document success measure sc(D) = Y/X over the tags
  /// tied for the highest compound certainty.
  double SuccessScore(const std::vector<CompoundRankedTag>& ranking) const;
};

/// Evaluates every document of a corpus. Fails if the ontology or any
/// document analysis fails (the corpus is generated to always analyze).
[[nodiscard]] Result<std::vector<DocEvaluation>> EvaluateCorpus(
    const std::vector<gen::GeneratedDocument>& corpus, Domain domain);

/// One row of Table 2/3: the fraction of documents on which the heuristic
/// ranked a correct separator 1st/2nd/3rd/4th; `none` covers abstentions
/// and ranks beyond 4 (the paper's corpus had none; ours can).
struct RankDistributionRow {
  std::string heuristic;
  std::array<double, 4> rank_fraction = {0, 0, 0, 0};
  double none_fraction = 0.0;
};

/// Computes Table 2 (obituaries) / Table 3 (car ads) rows.
std::vector<RankDistributionRow> RankDistribution(
    const std::vector<DocEvaluation>& evaluations);

/// Table 4: certainty factors derived by averaging rank distributions
/// across calibration domains (the paper averages obituaries and car ads).
CertaintyFactorTable DeriveCertaintyFactors(
    const std::vector<std::vector<RankDistributionRow>>& distributions);

/// Table 5: success rate of each of the 26 combinations over the pooled
/// calibration evaluations.
struct CombinationSuccess {
  std::string combo;    // e.g. "ORSI"
  double success_rate;  // mean sc(D)
};
std::vector<CombinationSuccess> CombinationSweep(
    const std::vector<DocEvaluation>& evaluations,
    const CertaintyFactorTable& table);

/// One row of Tables 6-9: per-heuristic and compound ranks for one site.
struct TestSiteRow {
  std::string site_name;
  std::string url;
  std::map<std::string, int> heuristic_rank;  // 0 = not ranked
  int compound_rank = 0;
};

/// Runs a test set (one document per site) under the compound heuristic
/// `letters` with certainty factors `table`.
[[nodiscard]] Result<std::vector<TestSiteRow>> RunTestSet(Domain domain,
                                            const std::string& letters,
                                            const CertaintyFactorTable& table);

/// Table 10: rank-1 success rates over a pool of evaluations for each
/// individual heuristic plus the compound heuristic.
struct SuccessSummary {
  std::map<std::string, double> individual;  // heuristic -> success rate
  double compound = 0.0;                     // ORSIH
};
SuccessSummary SummarizeSuccess(const std::vector<DocEvaluation>& evaluations,
                                const std::string& letters,
                                const CertaintyFactorTable& table);

}  // namespace webrbd::eval

#endif  // WEBRBD_EVAL_EXPERIMENTS_H_
