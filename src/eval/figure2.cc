// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "eval/figure2.h"

namespace webrbd {

std::string Figure2Document() {
  // Figure 2(a) of the paper, with the elided prose ("...") filled in.
  // Tag order and adjacency follow the figure exactly; see Figure2Document's
  // header comment for the structural properties tests rely on.
  return R"(<html><head><title>Classifieds</title></head>
<body bgcolor="#FFFFFF">
<table><tr><td>
<h1 align="left">Funeral Notices - </h1> October 1, 1998
<hr>
<b>Lemar K. Adamson</b><br> died on September 30, 1998. Lemar was born on September 5, 1913
in Spring City, Utah, a son of the late Karl and Alvena Adamson. He married Ruth Olsen on
June 12, 1936. He worked for the railroad for forty years and served faithfully in his
church. Funeral services will be held Saturday at 10:00 a.m. at <b>MEMORIAL CHAPEL</b>,
where friends may call one hour prior to services. Interment in the city cemetery.<br>
<hr>
Our beloved <b>Brian Fielding Frost</b>, age 41, passed away on September 30, 1998, in an
automobile accident. Brian was born in Mesa, Arizona, and graduated from Mountain View High
School. He is survived by his wife Anne, three sons, and his parents. Funeral services will be
held at 9:00 a.m. on Saturday in the <b>Howard Stake Center</b>, under the direction of
<b>Carrillo's Tucson Mortuary</b>, with a viewing the evening before. Interment will follow at
Holy Hope Cemetery<br>, where the family will greet friends after the dedication of the grave.
<hr>
<b>Leonard Kenneth Gunther</b><br> passed away on September 30, 1998. Leonard was born in
Ogden and spent his career as a schoolteacher, where generations of students remember his
kindness. He is survived by his sister Mae and many nieces and nephews. A viewing will be held
Monday evening at <b>HEATHER MORTUARY</b>, and funeral services will be conducted
at 11:00 a.m. at <b>HEATHER MORTUARY</b>, on
Tuesday, October 6, 1998. Interment at the Ogden City Cemetery .<br>
<hr>
</td></tr></table>
All material is copyrighted.
</body>
</html>
)";
}

}  // namespace webrbd
