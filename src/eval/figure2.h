// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#ifndef WEBRBD_EVAL_FIGURE2_H_
#define WEBRBD_EVAL_FIGURE2_H_

#include <string>

namespace webrbd {

/// The paper's Figure 2(a): a sample obituary Web document whose tag tree,
/// candidate tags, heuristic rankings, and compound certainty factors are
/// all worked through in Sections 3-5. The paper elides record prose with
/// ellipses; this reconstruction fills in period-plausible text while
/// keeping every HTML tag of the figure, in the figure's order, so the
/// structural computations match the paper exactly:
///   candidate tags {hr, b, br}, h1 irrelevant;
///   OM/RP/IT rank [hr, br, b], SD ranks [hr, b, br], HT ranks [b, br, hr];
///   ORSIH ranks hr first.
std::string Figure2Document();

/// The expected record separator of Figure 2(a).
inline const char* kFigure2Separator = "hr";

}  // namespace webrbd

#endif  // WEBRBD_EVAL_FIGURE2_H_
