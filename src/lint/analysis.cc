// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "lint/analysis.h"

#include <algorithm>
#include <set>

namespace webrbd {
namespace lint {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

bool IsOpenBracket(std::string_view t) {
  return t == "(" || t == "{" || t == "[";
}

std::string_view CloseFor(std::string_view open) {
  if (open == "(") return ")";
  if (open == "{") return "}";
  return "]";
}

/// Names that can precede a '(' without being a function name.
const std::set<std::string, std::less<>>& NonFunctionNames() {
  static const std::set<std::string, std::less<>> kNames = {
      "if",     "for",      "while",    "switch",  "return", "sizeof",
      "catch",  "alignof",  "decltype", "new",     "delete", "throw",
      "case",   "static_assert",        "alignas", "co_await",
      "co_return", "co_yield", "assert"};
  return kNames;
}

/// Tokens that may appear between a declarator's ')' and its body '{'.
bool IsDeclaratorSuffixWord(std::string_view t) {
  return t == "const" || t == "noexcept" || t == "override" || t == "final" ||
         t == "volatile" || t == "mutable" || t == "&" || t == "&&" ||
         t == "try";
}

/// Annotation macros (util/thread_annotations.h) that carry an argument
/// list and may sit between ')' and '{' on a declarator.
bool IsAnnotationMacro(std::string_view t) {
  return t.size() > 7 && t.substr(0, 7) == "WEBRBD_" &&
         (t.find("REQUIRES") != std::string_view::npos ||
          t.find("EXCLUDES") != std::string_view::npos ||
          t.find("ACQUIRE") != std::string_view::npos ||
          t.find("RELEASE") != std::string_view::npos ||
          t.find("GUARDED") != std::string_view::npos);
}

}  // namespace

FileAnalysis AnalyzeSource(std::string_view path, std::string_view content) {
  FileAnalysis fa;
  fa.path = std::string(path);
  fa.content = content;
  size_t start = 0;
  while (start <= content.size()) {
    const size_t nl = content.find('\n', start);
    if (nl == std::string_view::npos) {
      fa.lines.emplace_back(content.substr(start));
      break;
    }
    fa.lines.emplace_back(content.substr(start, nl - start));
    start = nl + 1;
  }
  fa.tokens = Tokenize(content);
  fa.code.reserve(fa.tokens.size());
  for (size_t i = 0; i < fa.tokens.size(); ++i) {
    if (fa.tokens[i].IsCode()) fa.code.push_back(i);
  }
  return fa;
}

size_t MatchingClose(const FileAnalysis& fa, size_t open_ci) {
  if (open_ci >= fa.code_size() || !IsOpenBracket(fa.CodeText(open_ci))) {
    return kNpos;
  }
  const std::string_view open = fa.CodeText(open_ci);
  const std::string_view close = CloseFor(open);
  int depth = 0;
  for (size_t ci = open_ci; ci < fa.code_size(); ++ci) {
    const std::string_view t = fa.CodeText(ci);
    if (t == open) ++depth;
    if (t == close) {
      if (--depth == 0) return ci + 1;
    }
  }
  return kNpos;
}

size_t SkipTemplateArgs(const FileAnalysis& fa, size_t open_ci) {
  if (fa.CodeText(open_ci) != "<") return kNpos;
  int depth = 0;
  for (size_t ci = open_ci; ci < fa.code_size(); ++ci) {
    const std::string_view t = fa.CodeText(ci);
    if (t == "<") ++depth;
    if (t == "<<") depth += 2;  // unlikely in a type, but stay balanced
    if (t == ">") {
      if (--depth == 0) return ci + 1;
    }
    if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return ci + 1;
    }
    if (t == ";") return kNpos;  // statement ended: not a template list
  }
  return kNpos;
}

std::vector<FunctionDef> FindFunctions(const FileAnalysis& fa) {
  std::vector<FunctionDef> defs;
  for (size_t ci = 0; ci + 1 < fa.code_size(); ++ci) {
    const Token& tok = fa.Code(ci);
    if (!tok.IsIdent() || tok.in_directive) continue;
    if (fa.CodeText(ci + 1) != "(") continue;
    if (NonFunctionNames().count(tok.text) > 0) continue;
    // An annotation macro before an inline body would otherwise parse as a
    // function named WEBRBD_REQUIRES owning that body.
    if (IsAnnotationMacro(tok.text)) continue;
    // Exclude calls: a call's name is preceded by '.', '->', '!', '(' of
    // another call's argument list... Distinguishing declarators from
    // calls perfectly needs a parser; the discriminator used here is what
    // FOLLOWS the parameter list (calls are followed by operators or
    // statement ends, declarators by '{', ';', or declarator suffixes),
    // plus a receiver check: a name reached via '.' or '->' is a call.
    if (ci > 0) {
      const std::string_view prev = fa.CodeText(ci - 1);
      if (prev == "." || prev == "->") continue;
    }
    const size_t params_end = MatchingClose(fa, ci + 1);
    if (params_end == kNpos) continue;

    FunctionDef def;
    def.name = std::string(tok.text);
    def.name_ci = ci;
    def.params_begin = ci + 1;
    def.params_end = params_end;

    // Walk the declarator suffix looking for the body '{' or a ';'.
    size_t cur = params_end;
    bool matched = false;
    while (cur < fa.code_size()) {
      const std::string_view t = fa.CodeText(cur);
      if (t == ";") {
        matched = true;  // declaration only
        break;
      }
      if (t == "{") {
        def.is_definition = true;
        def.body_begin = cur;
        def.body_end = MatchingClose(fa, cur);
        matched = def.body_end != kNpos;
        break;
      }
      if (IsDeclaratorSuffixWord(t)) {
        ++cur;
        continue;
      }
      if (t == "=") {
        // "= default", "= delete", "= 0": still a declaration.
        const std::string_view next = fa.CodeText(cur + 1);
        if (next == "default" || next == "delete" || next == "0") {
          cur += 2;
          continue;
        }
        break;  // initializer: this was a variable, not a function
      }
      if (fa.Code(cur).IsIdent() && IsAnnotationMacro(t)) {
        cur = fa.CodeText(cur + 1) == "("
                  ? MatchingClose(fa, cur + 1)
                  : cur + 1;
        if (cur == kNpos) break;
        continue;
      }
      if (t == "noexcept" || t == "throw") {
        ++cur;
        if (fa.CodeText(cur) == "(") {
          cur = MatchingClose(fa, cur);
          if (cur == kNpos) break;
        }
        continue;
      }
      if (t == "->") {
        // Trailing return type: skip tokens (ballancing <>/()) to '{'/';'.
        ++cur;
        while (cur < fa.code_size() && fa.CodeText(cur) != "{" &&
               fa.CodeText(cur) != ";") {
          if (fa.CodeText(cur) == "<") {
            const size_t after = SkipTemplateArgs(fa, cur);
            if (after == kNpos) break;
            cur = after;
          } else if (fa.CodeText(cur) == "(") {
            cur = MatchingClose(fa, cur);
            if (cur == kNpos) break;
          } else {
            ++cur;
          }
        }
        continue;
      }
      if (t == ":") {
        // Constructor initializer list: qualified-name + (...)/{...}
        // groups separated by commas. A '{' NOT directly preceded by a
        // member/base name is the constructor body, so the walk stops
        // there and the outer loop picks it up.
        ++cur;
        while (cur < fa.code_size()) {
          size_t name_tokens = 0;
          while (cur < fa.code_size() &&
                 (fa.Code(cur).IsIdent() || fa.CodeText(cur) == "::")) {
            ++cur;
            ++name_tokens;
          }
          if (name_tokens > 0 && fa.CodeText(cur) == "<") {
            const size_t after = SkipTemplateArgs(fa, cur);
            if (after == kNpos) break;
            cur = after;
          }
          const std::string_view open = fa.CodeText(cur);
          if (open != "(" && !(open == "{" && name_tokens > 0)) break;
          const size_t after = MatchingClose(fa, cur);
          if (after == kNpos) break;
          cur = after;
          if (fa.CodeText(cur) == ",") ++cur;
        }
        continue;
      }
      break;  // an operator etc.: this was a call, not a declarator
    }
    if (matched && def.is_definition) defs.push_back(def);
  }
  return defs;
}

const FunctionDef* EnclosingFunction(const std::vector<FunctionDef>& defs,
                                     size_t ci) {
  const FunctionDef* best = nullptr;
  for (const FunctionDef& def : defs) {
    if (!def.is_definition) continue;
    if (ci < def.body_begin || ci >= def.body_end) continue;
    if (best == nullptr ||
        def.body_end - def.body_begin < best->body_end - best->body_begin) {
      best = &def;
    }
  }
  return best;
}

}  // namespace lint
}  // namespace webrbd
