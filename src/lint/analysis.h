// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Per-file analysis substrate for the lint engine: the tokenized view of
// one source file plus the structural helpers every rule shares — balanced
// bracket matching, template-argument skipping (">>" counts as two closing
// angles), and function-definition discovery with body extents, so rules
// can reason about scopes instead of indentation.

#ifndef WEBRBD_LINT_ANALYSIS_H_
#define WEBRBD_LINT_ANALYSIS_H_

#include <string>
#include <string_view>
#include <vector>

#include "lint/token.h"
#include "lint/tokenizer.h"

namespace webrbd {
namespace lint {

/// The tokenized, pre-digested view of one source file that rules operate
/// on. `code` indexes into `tokens`, skipping comments, so rules iterate
/// code tokens by code-index (ci) and map back for positions.
struct FileAnalysis {
  std::string path;                      ///< repo-relative, forward slashes
  std::string_view content;              ///< the original bytes
  std::vector<std::string> lines;        ///< original lines (1-based access
                                         ///< via lines[line - 1])
  std::vector<Token> tokens;             ///< full stream incl. comments
  std::vector<size_t> code;              ///< indices of non-comment tokens

  const Token& Code(size_t ci) const { return tokens[code[ci]]; }
  size_t code_size() const { return code.size(); }

  /// Text of code token `ci`, or "" when out of range (safe lookahead).
  std::string_view CodeText(size_t ci) const {
    return ci < code.size() ? tokens[code[ci]].text : std::string_view();
  }
};

/// Builds the analysis for one file. `content` must outlive the result.
FileAnalysis AnalyzeSource(std::string_view path, std::string_view content);

/// Code-index one past the bracket matching the opener at `open_ci`
/// (which must be "(", "{", or "["); npos when unbalanced.
size_t MatchingClose(const FileAnalysis& fa, size_t open_ci);

/// Code-index one past the '>' closing the '<' at `open_ci`, treating
/// ">>" as two closing angles; npos when unbalanced or when the span
/// contains tokens that rule out a template argument list (';').
size_t SkipTemplateArgs(const FileAnalysis& fa, size_t open_ci);

/// A discovered function definition (or declaration).
struct FunctionDef {
  std::string name;        ///< unqualified name ("Visit", not "Walker::Visit")
  size_t name_ci = 0;      ///< code-index of the name token
  size_t params_begin = 0; ///< code-index of the '(' opening the parameters
  size_t params_end = 0;   ///< one past the matching ')'
  size_t body_begin = 0;   ///< code-index of the '{' (definitions only)
  size_t body_end = 0;     ///< one past the matching '}' (definitions only)
  bool is_definition = false;
};

/// Scans the stream for function declarations/definitions: an identifier
/// followed by a balanced parameter list and then either a body brace
/// (possibly after cv-qualifiers, ref-qualifiers, noexcept, attributes,
/// annotation macros, a constructor init list, or a trailing return type)
/// or a ';'. Control-flow keywords and lambda introducers are excluded.
/// Bodies of nested lambdas/local classes remain part of the enclosing
/// body extent.
std::vector<FunctionDef> FindFunctions(const FileAnalysis& fa);

/// The innermost function in `defs` whose body contains code-index `ci`,
/// or nullptr.
const FunctionDef* EnclosingFunction(const std::vector<FunctionDef>& defs,
                                     size_t ci);

}  // namespace lint
}  // namespace webrbd

#endif  // WEBRBD_LINT_ANALYSIS_H_
