// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// The nine foundational lint rules, ported from the original regex-per-line
// checker onto the token-stream engine. Behavior is contract-compatible
// (same rule names, same messages, same applicability) but the token view
// removes the old false-positive classes: literals and comments are opaque,
// multi-line constructs need no lookahead windows, and scopes come from
// real brace matching instead of indentation.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lint/analysis.h"
#include "lint/rules.h"
#include "util/string_util.h"

namespace webrbd {
namespace lint {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

constexpr std::string_view kLicenseBanner =
    "Copyright (c) the webrbd authors";

/// The keyword of a "#word" directive token ("#  ifndef" -> "ifndef").
std::string_view DirectiveWord(const Token& token) {
  std::string_view text = token.text;
  size_t end = text.size();
  size_t begin = end;
  while (begin > 0 && (IsAsciiAlnum(text[begin - 1]) || text[begin - 1] == '_')) {
    --begin;
  }
  return text.substr(begin, end - begin);
}

// ------------------------------------------------------------ license-header

class LicenseHeaderRule : public Rule {
 public:
  LintRuleInfo info() const override {
    return {"license-header",
            "every source file starts with the project license banner"};
  }

  void Check(const FileAnalysis& fa, const Corpus&,
             Reporter* reporter) const override {
    if (!fa.lines.empty() &&
        fa.lines[0].find(kLicenseBanner) != std::string::npos) {
      return;
    }
    reporter->Report(info().name, 1, 0,
                     "file must start with '// " + std::string(kLicenseBanner) +
                         ". Licensed under the Apache License 2.0.'");
  }
};

// ------------------------------------------------------------- include-guard

class IncludeGuardRule : public Rule {
 public:
  LintRuleInfo info() const override {
    return {"include-guard", "headers use WEBRBD_<PATH>_H_ include guards"};
  }

  void Check(const FileAnalysis& fa, const Corpus&,
             Reporter* reporter) const override {
    if (!EndsWith(fa.path, ".h")) return;
    const std::string expected = ExpectedIncludeGuard(fa.path);
    for (size_t ci = 0; ci < fa.code_size(); ++ci) {
      const Token& token = fa.Code(ci);
      if (token.kind != TokenKind::kDirective) continue;
      if (DirectiveWord(token) != "ifndef") continue;
      // Only the first #ifndef is the guard.
      if (fa.CodeText(ci + 1) != expected) {
        reporter->Report(info().name, token.line, 0,
                         "include guard must be " + expected);
      }
      return;
    }
    reporter->Report(info().name, 1, 0,
                     "header has no include guard (expected " + expected +
                         ")");
  }
};

// ----------------------------------------------------------- banned-function

class BannedFunctionRule : public Rule {
 public:
  LintRuleInfo info() const override {
    return {"banned-function",
            "atoi / strcpy / sprintf are forbidden (unbounded or "
            "locale-bound)"};
  }

  void Check(const FileAnalysis& fa, const Corpus&,
             Reporter* reporter) const override {
    static const std::set<std::string_view> kBanned = {"atoi", "strcpy",
                                                       "sprintf"};
    for (size_t ci = 0; ci + 1 < fa.code_size(); ++ci) {
      const Token& token = fa.Code(ci);
      if (!token.IsIdent() || kBanned.count(token.text) == 0) continue;
      if (fa.CodeText(ci + 1) != "(") continue;
      reporter->ReportAt(info().name, token,
                         "'" + std::string(token.text) +
                             "' is banned: use StringToInt/snprintf/"
                             "std::string instead");
    }
  }
};

// ------------------------------------------------------------ raw-new-delete

class RawNewDeleteRule : public Rule {
 public:
  LintRuleInfo info() const override {
    return {"raw-new-delete",
            "library code (src/) must not use raw new/delete expressions"};
  }

  void Check(const FileAnalysis& fa, const Corpus&,
             Reporter* reporter) const override {
    if (!IsLibraryPath(fa.path)) return;
    for (size_t ci = 0; ci < fa.code_size(); ++ci) {
      const Token& token = fa.Code(ci);
      if (!token.IsIdent() || token.in_directive) continue;
      const std::string_view prev = ci > 0 ? fa.CodeText(ci - 1) : "";
      if (prev == "operator") continue;  // operator new/delete overloads
      const std::string_view next = fa.CodeText(ci + 1);
      bool hit = false;
      if (token.Is("new")) {
        // A new-expression: `new T`, `new (place) T`, `new T[n]`.
        hit = (ci + 1 < fa.code_size() && fa.Code(ci + 1).IsIdent()) ||
              next == "(";
      } else if (token.Is("delete") && prev != "=") {
        // `= delete` is a deleted function, not a delete-expression.
        hit = (ci + 1 < fa.code_size() && fa.Code(ci + 1).IsIdent()) ||
              next == "*" || next == "(" ||
              (next == "[" && fa.CodeText(ci + 2) == "]");
      }
      if (hit) {
        reporter->ReportAt(info().name, token,
                           "raw new/delete in library code: use "
                           "std::make_unique / std::make_shared or a "
                           "container");
      }
    }
  }
};

// ---------------------------------------------------------- throw-in-library

class ThrowInLibraryRule : public Rule {
 public:
  LintRuleInfo info() const override {
    return {"throw-in-library",
            "library code (src/) reports errors via Status, never throw"};
  }

  void Check(const FileAnalysis& fa, const Corpus&,
             Reporter* reporter) const override {
    if (!IsLibraryPath(fa.path)) return;
    for (size_t ci = 0; ci < fa.code_size(); ++ci) {
      const Token& token = fa.Code(ci);
      if (!token.IsIdent() || !token.Is("throw")) continue;
      reporter->ReportAt(info().name, token,
                         "library code reports errors via Status/Result, "
                         "never exceptions");
    }
  }
};

// ---------------------------------------------------------- unchecked-status

class UncheckedStatusRule : public Rule {
 public:
  LintRuleInfo info() const override {
    return {"unchecked-status",
            "a Status/Result-returning call must not be a bare statement"};
  }

  void Collect(const FileAnalysis& fa, Corpus* corpus) override {
    // A declarator returning Status or Result<...>: the type name, then a
    // (possibly qualified) function name, then '('. Member access
    // (`x.Status`) and static-member calls (`Status::Ok(...)`) never match
    // because the token after the type must itself be an identifier.
    for (size_t ci = 0; ci + 1 < fa.code_size(); ++ci) {
      const Token& token = fa.Code(ci);
      if (!token.IsIdent() || token.in_directive) continue;
      const std::string_view prev = ci > 0 ? fa.CodeText(ci - 1) : "";
      if (prev == "." || prev == "->") continue;
      size_t after;
      if (token.Is("Status")) {
        after = ci + 1;
      } else if (token.Is("Result") && fa.CodeText(ci + 1) == "<") {
        after = SkipTemplateArgs(fa, ci + 1);
        if (after == kNpos) continue;
      } else {
        continue;
      }
      if (after >= fa.code_size() || !fa.Code(after).IsIdent()) continue;
      std::string last;
      size_t p = after;
      while (p < fa.code_size() && fa.Code(p).IsIdent()) {
        last = std::string(fa.CodeText(p));
        if (fa.CodeText(p + 1) == "::" && p + 2 < fa.code_size() &&
            fa.Code(p + 2).IsIdent()) {
          p += 2;
          continue;
        }
        ++p;
        break;
      }
      if (fa.CodeText(p) == "(") corpus->status_functions.insert(last);
    }
  }

  void Check(const FileAnalysis& fa, const Corpus& corpus,
             Reporter* reporter) const override {
    for (size_t ci = 0; ci + 1 < fa.code_size(); ++ci) {
      const Token& token = fa.Code(ci);
      if (!token.IsIdent() || token.in_directive) continue;
      if (fa.CodeText(ci + 1) != "(") continue;
      if (corpus.status_functions.count(std::string(token.text)) == 0) {
        continue;
      }
      // Walk back over the receiver chain (`obj.`, `ptr->`, `Class::`) to
      // the start of the expression.
      size_t begin = ci;
      while (begin >= 2) {
        const std::string_view link = fa.CodeText(begin - 1);
        if ((link == "." || link == "->" || link == "::") &&
            fa.Code(begin - 2).IsIdent()) {
          begin -= 2;
        } else {
          break;
        }
      }
      if (!AtStatementStart(fa, begin)) continue;
      const size_t after_call = MatchingClose(fa, ci + 1);
      if (after_call == kNpos || fa.CodeText(after_call) != ";") continue;
      reporter->ReportAt(
          info().name, token,
          "result of Status/Result-returning call '" +
              std::string(token.text) +
              "' is discarded; check it, propagate it with "
              "WEBRBD_RETURN_IF_ERROR, or cast to void");
    }
  }

 private:
  static bool AtStatementStart(const FileAnalysis& fa, size_t begin) {
    if (begin == 0) return true;
    const Token& prev = fa.Code(begin - 1);
    if (prev.kind == TokenKind::kDirective || prev.in_directive) return true;
    const std::string_view t = prev.text;
    if (t == ";" || t == "{" || t == "}" || t == ":" || t == "else" ||
        t == "do") {
      return true;
    }
    if (t == ")") {
      // `if (...) Call();` is a statement; `(void)Call();` is consumed.
      const bool void_cast = begin >= 3 && fa.CodeText(begin - 2) == "void" &&
                             fa.CodeText(begin - 3) == "(";
      return !void_cast;
    }
    return false;
  }
};

// ----------------------------------------------------------- unguarded-value

class UnguardedValueRule : public Rule {
 public:
  LintRuleInfo info() const override {
    return {"unguarded-value",
            "x.value() requires a dominating x.ok()/x.has_value() check"};
  }

  void Check(const FileAnalysis& fa, const Corpus&,
             Reporter* reporter) const override {
    const std::vector<FunctionDef> defs = FindFunctions(fa);
    for (size_t ci = 0; ci < fa.code_size(); ++ci) {
      const Token& token = fa.Code(ci);
      if (!token.IsIdent() || token.in_directive) continue;
      std::string ident;
      if (token.Is("move") && fa.CodeText(ci + 1) == "(" &&
          ci + 7 < fa.code_size() && fa.Code(ci + 2).IsIdent() &&
          fa.CodeText(ci + 3) == ")" && fa.CodeText(ci + 4) == "." &&
          fa.CodeText(ci + 5) == "value" && fa.CodeText(ci + 6) == "(" &&
          fa.CodeText(ci + 7) == ")") {
        ident = std::string(fa.CodeText(ci + 2));
      } else if (ci + 4 < fa.code_size() && fa.CodeText(ci + 1) == "." &&
                 fa.CodeText(ci + 2) == "value" &&
                 fa.CodeText(ci + 3) == "(" && fa.CodeText(ci + 4) == ")") {
        ident = std::string(token.text);
      } else {
        continue;
      }
      if (IsGuarded(fa, defs, ci, ident)) continue;
      reporter->ReportAt(info().name, token,
                         "'" + ident + ".value()' has no dominating '" +
                             ident +
                             ".ok()' (or has_value) check in this scope");
    }
  }

 private:
  /// Scans the enclosing function's tokens before `expr_ci` for a guard on
  /// `ident`: x.ok(, x->ok(, x.has_value(, or a condition (x) / (!x) /
  /// (*x). Without an enclosing definition (top-level fragment), the scan
  /// starts after the previous function body.
  static bool IsGuarded(const FileAnalysis& fa,
                        const std::vector<FunctionDef>& defs, size_t expr_ci,
                        const std::string& ident) {
    size_t scan_begin = 0;
    const FunctionDef* def = EnclosingFunction(defs, expr_ci);
    if (def != nullptr) {
      scan_begin = def->body_begin;
    } else {
      for (const FunctionDef& other : defs) {
        if (other.is_definition && other.body_end <= expr_ci) {
          scan_begin = std::max(scan_begin, other.body_end);
        }
      }
    }
    for (size_t ci = scan_begin; ci + 2 < expr_ci; ++ci) {
      const std::string_view a = fa.CodeText(ci);
      const std::string_view b = fa.CodeText(ci + 1);
      const std::string_view c = fa.CodeText(ci + 2);
      if (a == ident && (b == "." || b == "->") &&
          (c == "ok" || c == "has_value") && fa.CodeText(ci + 3) == "(") {
        return true;
      }
      if (a == "(" && b == ident && c == ")") return true;
      if (a == "(" && (b == "!" || b == "*") && c == ident &&
          fa.CodeText(ci + 3) == ")") {
        return true;
      }
    }
    return false;
  }
};

// --------------------------------------------------------- tagnode-recursion

class TagNodeRecursionRule : public Rule {
 public:
  LintRuleInfo info() const override {
    return {"tagnode-recursion",
            "functions over TagNode iterate with an explicit stack, never "
            "recurse (adversarial nesting overflows the call stack)"};
  }

  void Check(const FileAnalysis& fa, const Corpus&,
             Reporter* reporter) const override {
    if (!IsLibraryPath(fa.path)) return;
    for (const FunctionDef& def : FindFunctions(fa)) {
      if (!def.is_definition) continue;
      bool takes_tagnode = false;
      for (size_t ci = def.params_begin; ci < def.params_end; ++ci) {
        if (fa.CodeText(ci) == "TagNode") {
          takes_tagnode = true;
          break;
        }
      }
      if (!takes_tagnode) continue;
      for (size_t ci = def.body_begin + 1; ci + 1 < def.body_end; ++ci) {
        const Token& token = fa.Code(ci);
        if (!token.IsIdent() || token.text != def.name) continue;
        if (fa.CodeText(ci + 1) != "(") continue;
        reporter->ReportAt(
            info().name, token,
            "'" + def.name +
                "' takes a TagNode and calls itself; adversarial nesting "
                "depth overflows the call stack — iterate with an explicit "
                "stack (see PreOrderVisit)");
        break;
      }
    }
  }
};

// -------------------------------------------------- deprecated-pipeline-entry

class DeprecatedPipelineEntryRule : public Rule {
 public:
  LintRuleInfo info() const override {
    return {"deprecated-pipeline-entry",
            "src/ and tools/ must not call the deprecated "
            "RunIntegratedPipeline/RunBatchPipeline shims or the "
            "Catalog-returning ExtractDocument/ExtractCorpus entry points; "
            "deliver records through a RecordSink via "
            "ExtractDocumentInto/ExtractCorpusInto"};
  }

  void Check(const FileAnalysis& fa, const Corpus&,
             Reporter* reporter) const override {
    // Only library and tool code is held to the new API; tests and bench
    // exercise the shims on purpose (golden equivalence, migration cost).
    if (!StartsWith(fa.path, "src/") && !StartsWith(fa.path, "tools/")) {
      return;
    }
    // The shims themselves necessarily name the deprecated entry points:
    // the pipeline wrappers forward to ExtractDocument/ExtractCorpus, and
    // extraction_context defines those methods (as shims over the sinks).
    static const std::vector<std::string_view> kShimFiles = {
        "src/extract/integrated_pipeline.h",
        "src/extract/integrated_pipeline.cc",
        "src/extract/batch_pipeline.h", "src/extract/batch_pipeline.cc",
        "src/extract/extraction_context.h",
        "src/extract/extraction_context.cc"};
    for (std::string_view shim : kShimFiles) {
      if (fa.path == shim) return;
    }
    static const std::set<std::string_view> kDeprecatedShims = {
        "RunIntegratedPipeline", "RunBatchPipeline"};
    static const std::set<std::string_view> kDeprecatedEntries = {
        "ExtractDocument", "ExtractCorpus"};
    for (size_t ci = 0; ci + 1 < fa.code_size(); ++ci) {
      const Token& token = fa.Code(ci);
      if (!token.IsIdent()) continue;
      if (fa.CodeText(ci + 1) != "(") continue;
      if (kDeprecatedShims.count(token.text) != 0) {
        reporter->ReportAt(info().name, token,
                           "'" + std::string(token.text) +
                               "' is a deprecated shim; build an "
                               "ExtractionContext once and deliver through "
                               "a RecordSink with "
                               "ExtractDocumentInto/ExtractCorpusInto");
      } else if (kDeprecatedEntries.count(token.text) != 0) {
        reporter->ReportAt(info().name, token,
                           "'" + std::string(token.text) +
                               "' is a deprecated Catalog-returning entry "
                               "point; deliver records through a RecordSink "
                               "with '" +
                               std::string(token.text) + "Into'");
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> MakeCoreRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<LicenseHeaderRule>());
  rules.push_back(std::make_unique<IncludeGuardRule>());
  rules.push_back(std::make_unique<BannedFunctionRule>());
  rules.push_back(std::make_unique<RawNewDeleteRule>());
  rules.push_back(std::make_unique<ThrowInLibraryRule>());
  rules.push_back(std::make_unique<UncheckedStatusRule>());
  rules.push_back(std::make_unique<UnguardedValueRule>());
  rules.push_back(std::make_unique<TagNodeRecursionRule>());
  rules.push_back(std::make_unique<DeprecatedPipelineEntryRule>());
  return rules;
}

std::vector<std::unique_ptr<Rule>> MakeAllRules() {
  std::vector<std::unique_ptr<Rule>> rules = MakeCoreRules();
  rules.push_back(MakeArenaEscapeRule());
  rules.push_back(MakeLockDisciplineRule());
  rules.push_back(MakeMetricCatalogRule());
  return rules;
}

}  // namespace lint
}  // namespace webrbd
