// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// The multi-pass rule API of the lint engine. Rules run in two passes
// driven by Linter (lint/linter.h):
//
//   pass 1  Collect(file, corpus)  — every file, gathering cross-file facts
//                                    (declared Status functions, GUARDED_BY
//                                    annotations, lock-order edges, the
//                                    metric catalog, ...);
//   pass 2  Check(file, corpus)    — every file again, reporting findings
//                                    against the completed corpus.
//
// Findings go through the Reporter, which drops findings on lines carrying
// `// lint:allow(<rule>)` and fills in the source line and caret column.

#ifndef WEBRBD_LINT_RULES_H_
#define WEBRBD_LINT_RULES_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "lint/analysis.h"
#include "lint/linter.h"

namespace webrbd {
namespace lint {

/// Cross-file facts accumulated by pass 1 and read by pass 2.
struct Corpus {
  /// Names of functions whose return type is Status or Result<...>.
  std::set<std::string> status_functions;

  /// One WEBRBD_GUARDED_BY(mutex) field annotation. `stem` is the
  /// declaring file's path without extension ("src/util/thread_pool");
  /// accesses are only enforced in files sharing that stem, which keeps
  /// same-named fields of unrelated classes from cross-talking.
  struct GuardedField {
    std::string mutex;
    std::string stem;
    std::string path;
    size_t line = 0;
  };
  std::map<std::string, GuardedField> guarded_fields;  // field name -> guard

  /// WEBRBD_REQUIRES/WEBRBD_EXCLUDES contracts on a function, keyed by the
  /// function's unqualified name; enforced same-stem like guarded fields.
  struct FnContract {
    std::set<std::string> requires_held;
    std::set<std::string> excludes_held;
    std::string stem;
  };
  std::map<std::string, FnContract> fn_contracts;

  /// First site at which `outer` was held while `inner` was acquired.
  struct LockSite {
    std::string path;
    size_t line = 0;
  };
  std::map<std::pair<std::string, std::string>, LockSite> lock_edges;

  /// The documented metric catalog (src/obs/stages.h): metric name
  /// literal -> declaring constant, plus which constants are referenced
  /// anywhere outside their declaration.
  bool catalog_seen = false;
  std::map<std::string, std::string> metric_catalog;
  std::map<std::string, size_t> catalog_decl_line;  // constant -> line
  std::set<std::string> referenced_constants;
};

/// Finding sink for one file: applies inline `// lint:allow(<rule>)`
/// filtering and fills in line text and caret position.
class Reporter {
 public:
  Reporter(const FileAnalysis& fa, std::vector<LintFinding>* findings)
      : fa_(fa), findings_(findings) {}

  /// Reports at a line/column (column 0 = whole-line finding, no caret).
  void Report(std::string_view rule, size_t line, size_t column,
              std::string message);

  /// Reports at a token's position.
  void ReportAt(std::string_view rule, const Token& token,
                std::string message) {
    Report(rule, token.line, token.column, std::move(message));
  }

  const FileAnalysis& file() const { return fa_; }

 private:
  const FileAnalysis& fa_;
  std::vector<LintFinding>* findings_;
};

/// One lint rule: static metadata plus the two passes.
class Rule {
 public:
  virtual ~Rule() = default;
  virtual LintRuleInfo info() const = 0;
  virtual void Collect(const FileAnalysis& fa, Corpus* corpus) {
    (void)fa;
    (void)corpus;
  }
  virtual void Check(const FileAnalysis& fa, const Corpus& corpus,
                     Reporter* reporter) const = 0;
};

/// The nine foundational rules (license-header ... deprecated-pipeline-
/// entry), in catalog order.
std::vector<std::unique_ptr<Rule>> MakeCoreRules();

/// The deep structural rules, in catalog order.
std::unique_ptr<Rule> MakeArenaEscapeRule();
std::unique_ptr<Rule> MakeLockDisciplineRule();
std::unique_ptr<Rule> MakeMetricCatalogRule();

/// Every rule, in catalog order (core + deep).
std::vector<std::unique_ptr<Rule>> MakeAllRules();

}  // namespace lint
}  // namespace webrbd

#endif  // WEBRBD_LINT_RULES_H_
