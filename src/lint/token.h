// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// The token model for the webrbd_lint analysis engine. The tokenizer
// (lint/tokenizer.h) turns C++ source into a flat stream of these; every
// rule in src/lint works on the stream (or on views derived from it)
// instead of on raw lines, so string literals, comments, raw strings, and
// line continuations can never confuse a rule.

#ifndef WEBRBD_LINT_TOKEN_H_
#define WEBRBD_LINT_TOKEN_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace webrbd {
namespace lint {

enum class TokenKind : uint8_t {
  kIdentifier,   ///< identifiers and keywords (rules compare text)
  kNumber,       ///< integer / floating literals, incl. ' separators
  kString,       ///< "..." including encoding prefixes (u8, L, ...)
  kRawString,    ///< R"delim(...)delim" including prefix and delimiters
  kCharLiteral,  ///< '...'
  kComment,      ///< one // comment or one whole /*...*/ block
  kDirective,    ///< the introducing "#word" of a preprocessor directive
  kPunct,        ///< operators and punctuation, maximal munch
};

/// One lexed token. `text` views into the source buffer passed to
/// Tokenize(); it stays valid as long as that buffer does.
struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string_view text;
  size_t offset = 0;        ///< byte offset of the first character
  size_t line = 0;          ///< 1-based physical line of the first character
  size_t column = 0;        ///< 1-based byte column on that line
  bool in_directive = false;  ///< token belongs to a preprocessor directive

  bool Is(std::string_view s) const { return text == s; }
  bool IsIdent() const { return kind == TokenKind::kIdentifier; }
  bool IsCode() const { return kind != TokenKind::kComment; }
};

}  // namespace lint
}  // namespace webrbd

#endif  // WEBRBD_LINT_TOKEN_H_
