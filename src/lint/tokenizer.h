// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// A lightweight C++ tokenizer for the webrbd_lint analysis engine. It is
// not a compiler front end: it lexes identifiers, literals, comments,
// preprocessor directives, and punctuation with enough fidelity that lint
// rules can reason about statements, scopes, and nesting without being
// fooled by the things that break line-based regex linting:
//
//  - string/char literals and raw strings (R"delim(...)delim"), including
//    encoding prefixes (u8"...", LR"(...)"): one token each, so code-like
//    text inside them is never mistaken for code;
//  - // and /*...*/ comments: one token each (block comments may span
//    many lines), emitted into the stream so rules that care (and the
//    scrubber) can see them, and skipped by everything else;
//  - backslash-newline line continuations: treated as whitespace that does
//    not terminate a preprocessor directive (C++ phase-2 splicing);
//  - preprocessor directives: the introducing `#word` becomes one
//    kDirective token and every token up to the (unescaped) end of line is
//    flagged in_directive, so statement-level rules can skip macro bodies;
//  - maximal-munch punctuation (`->`, `::`, `>>`, `<=>`...), so template
//    nesting helpers can treat `>>` as two closing angles.
//
// Tokens view into the caller's buffer; no text is copied.

#ifndef WEBRBD_LINT_TOKENIZER_H_
#define WEBRBD_LINT_TOKENIZER_H_

#include <string_view>
#include <vector>

#include "lint/token.h"

namespace webrbd {
namespace lint {

/// Lexes `source` into a token stream. Never fails: unterminated literals
/// end at the next newline (resync), an unterminated block comment or raw
/// string extends to end of input. The returned tokens view into `source`.
std::vector<Token> Tokenize(std::string_view source);

}  // namespace lint
}  // namespace webrbd

#endif  // WEBRBD_LINT_TOKENIZER_H_
