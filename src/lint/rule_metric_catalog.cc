// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// metric-catalog: src/obs/stages.h is the single catalog of observable
// metric names (`inline constexpr std::string_view kFoo = "webrbd_...";`).
// This rule keeps the catalog and the code from drifting apart, in both
// directions:
//
//   - every "webrbd_..." metric-name string literal in src/ or tools/
//     (outside the catalog itself) must be declared in the catalog — new
//     metrics cannot be minted ad hoc at a registry call site;
//   - every catalog constant must be referenced somewhere outside its own
//     declaration — a metric documented but never emitted is dead weight
//     that dashboards will wait on forever.
//
// The rule disarms itself when the catalog header is not part of the
// linted file set (e.g. linting only tests/), since neither direction can
// be evaluated then. Tests and bench are exempt from the literal check:
// they legitimately probe derived names like "webrbd_..._seconds_count".

#include <memory>
#include <string>
#include <vector>

#include "lint/analysis.h"
#include "lint/rules.h"
#include "util/string_util.h"

namespace webrbd {
namespace lint {
namespace {

constexpr std::string_view kCatalogPath = "src/obs/stages.h";
constexpr std::string_view kMetricPrefix = "webrbd_";

/// The unquoted value of a plain string token, or "" for other tokens
/// (raw strings and prefixed literals never hold metric names here).
std::string_view LiteralBody(const Token& token) {
  if (token.kind != TokenKind::kString) return {};
  std::string_view text = token.text;
  const size_t open = text.find('"');
  if (open == std::string_view::npos || text.size() < open + 2 ||
      text.back() != '"') {
    return {};
  }
  return text.substr(open + 1, text.size() - open - 2);
}

/// True iff `body` is shaped like a whole metric name: "webrbd_" followed
/// by at least one more [a-z0-9_] character and nothing else. Tool banner
/// strings ("webrbd_lint: ...") and the bare prefix are not metric names.
bool LooksLikeMetricName(std::string_view body) {
  if (!StartsWith(body, kMetricPrefix) || body.size() <= kMetricPrefix.size()) {
    return false;
  }
  for (char c : body) {
    if (!(c >= 'a' && c <= 'z') && !(c >= '0' && c <= '9') && c != '_') {
      return false;
    }
  }
  return true;
}

class MetricCatalogRule : public Rule {
 public:
  LintRuleInfo info() const override {
    return {"metric-catalog",
            "every webrbd_ metric name literal must be declared in the "
            "src/obs/stages.h catalog, and every catalog constant must be "
            "used"};
  }

  void Collect(const FileAnalysis& fa, Corpus* corpus) override {
    if (fa.path == kCatalogPath) {
      corpus->catalog_seen = true;
      // `inline constexpr std::string_view kFoo = "webrbd_foo";`
      for (size_t ci = 0; ci + 2 < fa.code_size(); ++ci) {
        const Token& token = fa.Code(ci);
        if (!token.IsIdent() || token.text.size() < 2 ||
            token.text[0] != 'k') {
          continue;
        }
        if (fa.CodeText(ci + 1) != "=") continue;
        const std::string_view body = LiteralBody(fa.Code(ci + 2));
        if (!LooksLikeMetricName(body)) continue;
        corpus->metric_catalog.emplace(std::string(body),
                                       std::string(token.text));
        corpus->catalog_decl_line.emplace(std::string(token.text),
                                          token.line);
      }
      return;
    }
    // Anywhere else, remember which k-constants are referenced, so the
    // catalog's never-used check can run during the catalog's own Check.
    for (size_t ci = 0; ci < fa.code_size(); ++ci) {
      const Token& token = fa.Code(ci);
      if (token.IsIdent() && token.text.size() >= 2 &&
          token.text[0] == 'k') {
        corpus->referenced_constants.insert(std::string(token.text));
      }
    }
  }

  void Check(const FileAnalysis& fa, const Corpus& corpus,
             Reporter* reporter) const override {
    if (!corpus.catalog_seen) return;

    if (fa.path == kCatalogPath) {
      // Direction 2: documented but never emitted.
      for (const auto& [literal, constant] : corpus.metric_catalog) {
        if (corpus.referenced_constants.count(constant) > 0) continue;
        const auto line = corpus.catalog_decl_line.find(constant);
        reporter->Report(
            info().name,
            line != corpus.catalog_decl_line.end() ? line->second : 1, 0,
            "catalog constant '" + constant + "' (\"" + literal +
                "\") is never referenced outside the catalog; delete it or "
                "wire the metric up");
      }
      return;
    }

    // Direction 1: emitted but not documented.
    if (!StartsWith(fa.path, "src/") && !StartsWith(fa.path, "tools/")) {
      return;
    }
    for (size_t ci = 0; ci < fa.code_size(); ++ci) {
      const Token& token = fa.Code(ci);
      const std::string_view body = LiteralBody(token);
      if (!LooksLikeMetricName(body)) continue;
      if (corpus.metric_catalog.count(std::string(body)) > 0) continue;
      reporter->ReportAt(
          info().name, token,
          "metric name \"" + std::string(body) +
              "\" is not declared in the catalog (src/obs/stages.h); add a "
              "metric_names:: constant and use it here");
    }
  }
};

}  // namespace

std::unique_ptr<Rule> MakeMetricCatalogRule() {
  return std::make_unique<MetricCatalogRule>();
}

}  // namespace lint
}  // namespace webrbd
