// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// arena-escape: TagNode pointers and string_views handed out by the
// arena-backed tag tree (src/html/document_arena.h) only live until the
// ExtractionContext's arena is reset after the ExtractDocument call, and
// HtmlToken's name/text/attr views (src/html/token.h) borrow the source
// document buffer and the lexer's arena the same way. This rule flags the
// storage patterns that outlive that window:
//
//   - assigning a borrowed value to a member (`last_node_ = node;`) or a
//     global (`g_last = node->text;`), and
//   - inserting one into a member/global container
//     (`nodes_.push_back(node)`).
//
// "Borrowed" is tracked per function: TagNode*/& and HtmlToken*/&
// parameters and locals, plus locals of view type (string_view / auto)
// initialized from a borrowed value. An assignment only counts when the borrowed variable is
// the ROOT of the stored expression (`node`, `&node`, `node->text`,
// `node->text()`), so scalar derivations (`CountNodes(node)`,
// `node->children().size()`) pass.
//
// src/html/ itself is exempt: the arena-owning layer necessarily stores
// nodes and views with arena lifetime.

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lint/analysis.h"
#include "lint/rules.h"
#include "util/string_util.h"

namespace webrbd {
namespace lint {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

/// Methods whose result is a scalar copy, not a borrow, even when called
/// on a borrowed chain.
const std::set<std::string, std::less<>>& ScalarMethods() {
  static const std::set<std::string, std::less<>> kMethods = {
      "size",  "length",  "empty", "count",        "depth",
      "id",    "node_id", "index", "kind",         "level",
      "begin", "end",     "IsTag", "self_closing", "synthetic"};
  return kMethods;
}

/// True for identifiers that outlive the current call by naming
/// convention: members (`nodes_`) and globals (`g_nodes`).
bool IsLongLivedName(std::string_view name) {
  if (name.size() >= 2 && name.back() == '_' &&
      name[name.size() - 2] != '_') {
    return true;
  }
  return name.size() > 2 && name.substr(0, 2) == "g_";
}

bool IsInsertMethod(std::string_view name) {
  return name == "push_back" || name == "emplace_back" || name == "insert" ||
         name == "emplace" || name == "push" || name == "assign" ||
         name == "try_emplace";
}

class ArenaEscapeRule : public Rule {
 public:
  LintRuleInfo info() const override {
    return {"arena-escape",
            "a TagNode*, HtmlToken, or string_view borrowing arena- or "
            "document-backed storage must not be stored in a member, "
            "global, or container that outlives the extraction call"};
  }

  void Check(const FileAnalysis& fa, const Corpus&,
             Reporter* reporter) const override {
    if (!StartsWith(fa.path, "src/")) return;
    if (StartsWith(fa.path, "src/html/")) return;  // the arena-owning layer
    for (const FunctionDef& def : FindFunctions(fa)) {
      if (!def.is_definition) continue;
      CheckFunction(fa, def, reporter);
    }
  }

 private:
  void CheckFunction(const FileAnalysis& fa, const FunctionDef& def,
                     Reporter* reporter) const {
    // Borrowed variables, found in token order: TagNode*/& declarations in
    // the parameter list and body, plus view-typed locals initialized from
    // an already-borrowed value.
    std::set<std::string> borrowed;
    for (size_t ci = def.params_begin; ci + 2 < def.body_end; ++ci) {
      const std::string_view type = fa.CodeText(ci);
      if (type != "TagNode" && type != "HtmlToken") continue;
      const std::string_view mod = fa.CodeText(ci + 1);
      if (mod != "*" && mod != "&") continue;
      if (!fa.Code(ci + 2).IsIdent()) continue;
      borrowed.insert(std::string(fa.CodeText(ci + 2)));
    }
    if (borrowed.empty()) return;

    for (size_t ci = def.body_begin + 1; ci < def.body_end; ++ci) {
      const Token& token = fa.Code(ci);
      if (!token.IsIdent() || token.in_directive) continue;
      const std::string_view next = fa.CodeText(ci + 1);

      // Pattern 1: `<name> = <borrowed-rooted expr> ;`
      if (next == "=" && fa.CodeText(ci + 2) != "=") {
        const std::string root = BorrowedRoot(fa, ci + 2, borrowed);
        if (root.empty()) continue;
        if (IsLongLivedName(token.text)) {
          reporter->ReportAt(
              info().name, token,
              "'" + root +
                  "' borrows arena- or document-backed storage; storing it "
                  "in '" + std::string(token.text) +
                  "' outlives the owning document — copy to std::string "
                  "(or keep a TagNodeId) instead");
        } else if (IsViewDeclaration(fa, ci)) {
          borrowed.insert(std::string(token.text));  // borrow propagates
        }
        continue;
      }

      // Pattern 2: `<member>.push_back(<borrowed-rooted expr>)` et al.
      if (IsLongLivedName(token.text) && (next == "." || next == "->") &&
          IsInsertMethod(fa.CodeText(ci + 2)) &&
          fa.CodeText(ci + 3) == "(") {
        const size_t close = MatchingClose(fa, ci + 3);
        if (close == kNpos) continue;
        // Check the root of each top-level argument; a borrow buried in
        // another call's arguments (`ids_.push_back(IdOf(node))`) is that
        // call's business, not an escape.
        std::vector<size_t> arg_starts = {ci + 4};
        int depth = 0;
        for (size_t ai = ci + 4; ai + 1 < close; ++ai) {
          const std::string_view t = fa.CodeText(ai);
          if (t == "(" || t == "[" || t == "{") ++depth;
          if (t == ")" || t == "]" || t == "}") --depth;
          if (t == "," && depth == 0) arg_starts.push_back(ai + 1);
        }
        for (size_t arg : arg_starts) {
          if (arg + 1 > close) break;
          const std::string root = BorrowedRoot(fa, arg, borrowed);
          if (root.empty()) continue;
          reporter->ReportAt(
              info().name, token,
              "'" + root +
                  "' borrows arena- or document-backed storage; inserting "
                  "it into '" + std::string(token.text) +
                  "' outlives the owning document — copy to std::string "
                  "(or keep a TagNodeId) instead");
          break;
        }
        ci = close;
      }
    }
  }

  /// If the expression starting at `ci` is rooted in a borrowed variable —
  /// optional `&`/`*`, the variable, then any chain of member accesses and
  /// calls — returns that variable. The chain must not end in a known
  /// scalar accessor, and a root buried inside another call's arguments
  /// (`CountNodes(node)`) does not count.
  std::string BorrowedRoot(const FileAnalysis& fa, size_t ci,
                           const std::set<std::string>& borrowed) const {
    std::string_view first = fa.CodeText(ci);
    if (first == "&" || first == "*") first = fa.CodeText(++ci);
    // std::move does not launder a borrow: look through it.
    if (first == "std" && fa.CodeText(ci + 1) == "::") ci += 2;
    if (fa.CodeText(ci) == "move" && fa.CodeText(ci + 1) == "(") {
      return BorrowedRoot(fa, ci + 2, borrowed);
    }
    if (ci >= fa.code_size() || !fa.Code(ci).IsIdent()) return "";
    const std::string root(fa.CodeText(ci));
    if (borrowed.count(root) == 0) return "";
    // Walk the access chain; remember the last member name crossed.
    std::string last_member;
    size_t p = ci + 1;
    while (p < fa.code_size()) {
      const std::string_view t = fa.CodeText(p);
      if (t == "." || t == "->") {
        if (p + 1 >= fa.code_size() || !fa.Code(p + 1).IsIdent()) break;
        last_member = std::string(fa.CodeText(p + 1));
        p += 2;
        continue;
      }
      if (t == "(") {
        const size_t after = MatchingClose(fa, p);
        if (after == kNpos) break;
        p = after;
        continue;
      }
      break;
    }
    if (!last_member.empty() && ScalarMethods().count(last_member) > 0) {
      return "";  // the chain collapses to a scalar copy
    }
    return root;
  }

  /// True when the identifier at code-index `name_ci` is being DECLARED
  /// with a view-ish type: the preceding tokens are `auto`, `string_view`,
  /// `TagNode` + `*`/`&`, or a `const` variant thereof.
  bool IsViewDeclaration(const FileAnalysis& fa, size_t name_ci) const {
    if (name_ci == 0) return false;
    size_t p = name_ci - 1;
    std::string_view t = fa.CodeText(p);
    if ((t == "*" || t == "&") && p > 0) t = fa.CodeText(--p);
    return t == "auto" || t == "string_view" || t == "TagNode" ||
           t == "HtmlToken";
  }
};

}  // namespace

std::unique_ptr<Rule> MakeArenaEscapeRule() {
  return std::make_unique<ArenaEscapeRule>();
}

}  // namespace lint
}  // namespace webrbd
