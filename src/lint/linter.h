// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// webrbd_lint: the repo's own static checker, built on the project's regex
// engine (src/text). It enforces repo-specific correctness rules that
// generic tooling cannot know about — most importantly the Status/Result
// error-handling discipline from util/status.h and util/result.h.
//
// The checker is deliberately heuristic: it works line-by-line on scrubbed
// source (comments and string literals blanked) and approximates scopes by
// indentation. False positives are expected to be rare and are vetted via
// the suppression file (tools/webrbd_lint_suppressions.txt) or an inline
// `// lint:allow(<rule>)` comment on the offending line.
//
// Rules (see docs/static-analysis.md for the full contract):
//   license-header      first line must carry the project license banner
//   include-guard       headers must use WEBRBD_<PATH>_H_ guards
//   banned-function     atoi / strcpy / sprintf are forbidden everywhere
//   raw-new-delete      no raw new/delete expressions in library code (src/)
//   throw-in-library    no `throw` from library code (src/)
//   unchecked-status    a Status/Result-returning call used as a bare
//                       statement discards the error
//   unguarded-value     Result/optional `x.value()` with no dominating
//                       `x.ok()` / `x.has_value()` check in the same scope
//   tagnode-recursion   a function taking a TagNode must not call itself:
//                       adversarial nesting depth overflows the call stack;
//                       iterate with an explicit stack (see PreOrderVisit)
//   deprecated-pipeline-entry
//                       library and tool code (src/, tools/) must not call
//                       the deprecated RunIntegratedPipeline/RunBatchPipeline
//                       shims — construct an ExtractionContext instead

#ifndef WEBRBD_LINT_LINTER_H_
#define WEBRBD_LINT_LINTER_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "text/regex.h"
#include "util/result.h"

namespace webrbd {
namespace lint {

/// One rule violation at a specific source location.
struct LintFinding {
  std::string rule;       ///< rule identifier, e.g. "unchecked-status"
  std::string path;       ///< repo-relative path with forward slashes
  size_t line = 0;        ///< 1-based line number
  std::string message;    ///< human-readable explanation
  std::string line_text;  ///< the offending source line, trimmed
};

/// A source file handed to the linter. `path` must be repo-relative with
/// forward slashes (e.g. "src/html/lexer.cc") — rule applicability and the
/// expected include-guard name are derived from it.
struct LintSource {
  std::string path;
  std::string content;
};

/// Static description of a rule, for --list-rules and the docs.
struct LintRuleInfo {
  std::string_view name;
  std::string_view description;
};

/// All rules the linter knows about, in evaluation order.
const std::vector<LintRuleInfo>& AllLintRules();

/// Returns `content` with comments and string/char-literal bodies replaced
/// by spaces, byte-for-byte (newlines preserved), so that line/column
/// positions in the scrubbed text match the original. Handles //, /*...*/,
/// "...", '...' and R"delim(...)delim" raw strings.
std::string ScrubSource(std::string_view content);

/// Parsed suppression list. File format, one entry per line:
///
///   <rule> <path-suffix> [<line-substring>]
///
/// `<rule>` may be `*` to match any rule. A finding is suppressed when the
/// rule matches, the finding's path ends with `<path-suffix>`, and — if
/// given — the offending line contains `<line-substring>`. Blank lines and
/// lines starting with '#' are ignored.
class SuppressionList {
 public:
  SuppressionList() = default;

  /// Parses suppression-file text; rejects malformed lines.
  [[nodiscard]] static Result<SuppressionList> Parse(std::string_view text);

  /// True iff `finding` matches an entry and should be dropped.
  bool Matches(const LintFinding& finding) const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string rule;
    std::string path_suffix;
    std::string line_substring;  // empty = match any line
  };
  std::vector<Entry> entries_;
};

/// The checker. Two-pass: feed every file to CollectDeclarations() first so
/// the unchecked-status rule knows the full set of Status/Result-returning
/// function names, then call LintFile() on each file.
class Linter {
 public:
  /// Compiles the rule patterns (using the project regex engine).
  [[nodiscard]] static Result<Linter> Create();

  /// Pass 1: records the names of functions declared in `source` whose
  /// return type is Status or Result<...>.
  void CollectDeclarations(const LintSource& source);

  /// Pass 2: runs every rule over `source`, appending to `findings`.
  /// Findings on lines carrying `// lint:allow(<rule>)` are dropped here;
  /// file-level suppressions are the caller's job (SuppressionList).
  void LintFile(const LintSource& source,
                std::vector<LintFinding>* findings) const;

  /// The names collected by pass 1 (exposed for tests/diagnostics).
  const std::set<std::string>& status_returning_functions() const {
    return status_functions_;
  }

 private:
  Linter() = default;

  void CheckLicenseHeader(const LintSource& source,
                          std::vector<LintFinding>* findings) const;
  void CheckIncludeGuard(const LintSource& source,
                         const std::vector<std::string>& scrubbed_lines,
                         std::vector<LintFinding>* findings) const;
  void CheckBannedFunctions(const LintSource& source,
                            const std::vector<std::string>& scrubbed_lines,
                            std::vector<LintFinding>* findings) const;
  void CheckRawNewDelete(const LintSource& source,
                         const std::vector<std::string>& scrubbed_lines,
                         std::vector<LintFinding>* findings) const;
  void CheckThrow(const LintSource& source,
                  const std::vector<std::string>& scrubbed_lines,
                  std::vector<LintFinding>* findings) const;
  void CheckUncheckedStatus(const LintSource& source,
                            const std::vector<std::string>& scrubbed_lines,
                            std::vector<LintFinding>* findings) const;
  void CheckUnguardedValue(const LintSource& source,
                           const std::vector<std::string>& scrubbed_lines,
                           std::vector<LintFinding>* findings) const;
  void CheckTagNodeRecursion(const LintSource& source,
                             const std::vector<std::string>& scrubbed_lines,
                             std::vector<LintFinding>* findings) const;
  void CheckDeprecatedPipelineEntry(
      const LintSource& source,
      const std::vector<std::string>& scrubbed_lines,
      std::vector<LintFinding>* findings) const;

  std::set<std::string> status_functions_;

  // Compiled rule patterns; set by Create().
  std::vector<Regex> banned_function_regexes_;
  std::vector<Regex> new_delete_regexes_;
  std::vector<Regex> throw_regexes_;
  std::vector<Regex> value_call_regexes_;
};

/// Renders a finding as "path:line: [rule] message" plus the source line.
std::string FormatFinding(const LintFinding& finding);

/// Expected include-guard macro for a repo-relative header path: the path
/// uppercased with separators mapped to '_', prefixed WEBRBD_, with a
/// leading "src/" stripped (library headers are included as "html/lexer.h").
std::string ExpectedIncludeGuard(std::string_view path);

/// True iff `path` is library code (under src/), where the stricter
/// raw-new-delete and throw-in-library rules apply.
bool IsLibraryPath(std::string_view path);

}  // namespace lint
}  // namespace webrbd

#endif  // WEBRBD_LINT_LINTER_H_
