// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// webrbd_lint: the repo's own static checker. Since v2 it is built on a
// token-stream C++ analysis engine (lint/tokenizer.h, lint/analysis.h)
// instead of per-line regexes: every rule sees real tokens (string
// literals, raw strings, comments, and line continuations can no longer
// confuse a rule) and structural helpers (balanced brackets, template
// argument lists, function bodies) instead of approximating scopes by
// indentation.
//
// Rules run in two passes (see lint/rules.h): a Collect pass that gathers
// cross-file facts into a Corpus — Status/Result-returning function names,
// WEBRBD_GUARDED_BY annotations, lock-acquisition edges, the metric
// catalog — and a Check pass that reports findings against it.
//
// False positives are expected to be rare and are vetted via the
// suppression file (tools/webrbd_lint_suppressions.txt) or an inline
// `// lint:allow(<rule>)` comment on the offending line.
//
// Rules (see docs/static-analysis.md for the full contract):
//   license-header      first line must carry the project license banner
//   include-guard       headers must use WEBRBD_<PATH>_H_ guards
//   banned-function     atoi / strcpy / sprintf are forbidden everywhere
//   raw-new-delete      no raw new/delete expressions in library code (src/)
//   throw-in-library    no `throw` from library code (src/)
//   unchecked-status    a Status/Result-returning call used as a bare
//                       statement discards the error
//   unguarded-value     Result/optional `x.value()` with no dominating
//                       `x.ok()` / `x.has_value()` check in the same scope
//   tagnode-recursion   a function taking a TagNode must not call itself:
//                       adversarial nesting depth overflows the call stack;
//                       iterate with an explicit stack (see PreOrderVisit)
//   deprecated-pipeline-entry
//                       library and tool code (src/, tools/) must not call
//                       the deprecated RunIntegratedPipeline/RunBatchPipeline
//                       shims — construct an ExtractionContext instead
//   arena-escape        a TagNode*/string_view borrowed from an arena-backed
//                       tag tree must not be stored into a member, global,
//                       or container that outlives the extraction call
//   lock-discipline     lock acquisition order must be globally consistent,
//                       and WEBRBD_GUARDED_BY fields need their mutex held
//   metric-catalog      every webrbd_ metric name literal must appear in the
//                       src/obs/stages.h catalog, and vice versa

#ifndef WEBRBD_LINT_LINTER_H_
#define WEBRBD_LINT_LINTER_H_

#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace webrbd {
namespace lint {

class Rule;
struct Corpus;

/// One rule violation at a specific source location.
struct LintFinding {
  std::string rule;       ///< rule identifier, e.g. "unchecked-status"
  std::string path;       ///< repo-relative path with forward slashes
  size_t line = 0;        ///< 1-based line number
  std::string message;    ///< human-readable explanation
  std::string line_text;  ///< the offending source line, trimmed
  size_t column = 0;      ///< 1-based byte column; 0 = whole-line finding
  size_t caret = 0;       ///< 1-based caret position within line_text;
                          ///< 0 = no caret (kept separate from `column`
                          ///< because line_text is trimmed)
};

/// A source file handed to the linter. `path` must be repo-relative with
/// forward slashes (e.g. "src/html/lexer.cc") — rule applicability and the
/// expected include-guard name are derived from it.
struct LintSource {
  std::string path;
  std::string content;
};

/// Static description of a rule, for --list-rules and the docs.
struct LintRuleInfo {
  std::string_view name;
  std::string_view description;
};

/// All rules the linter knows about, in evaluation order.
const std::vector<LintRuleInfo>& AllLintRules();

/// Returns `content` with comments and string/char-literal bodies replaced
/// by spaces, byte-for-byte (newlines preserved), so that line/column
/// positions in the scrubbed text match the original. Handles //, /*...*/,
/// "...", '...' and R"delim(...)delim" raw strings. Implemented on the
/// tokenizer; kept public because tools and tests use it directly.
std::string ScrubSource(std::string_view content);

/// Parsed suppression list. File format, one entry per line:
///
///   <rule> <path-suffix> [<line-substring>]
///
/// `<rule>` may be `*` to match any rule. A finding is suppressed when the
/// rule matches, the finding's path ends with `<path-suffix>`, and — if
/// given — the offending line contains `<line-substring>`. Blank lines and
/// lines starting with '#' are ignored.
class SuppressionList {
 public:
  SuppressionList() = default;

  /// Parses suppression-file text; rejects malformed lines.
  [[nodiscard]] static Result<SuppressionList> Parse(std::string_view text);

  /// True iff `finding` matches an entry and should be dropped.
  bool Matches(const LintFinding& finding) const;

  /// Entries that matched none of `findings` (the pre-suppression list for
  /// a whole run): stale suppressions that should be pruned. Returns the
  /// original source line of each stale entry.
  std::vector<std::string> StaleEntries(
      const std::vector<LintFinding>& findings) const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::string rule;
    std::string path_suffix;
    std::string line_substring;  // empty = match any line
    std::string source_line;     // the entry as written, for reporting
  };

  bool EntryMatches(const Entry& entry, const LintFinding& finding) const;

  std::vector<Entry> entries_;
};

/// The checker. Two-pass: feed every file to CollectDeclarations() first so
/// cross-file rules (unchecked-status, lock-discipline, metric-catalog)
/// see the whole corpus, then call LintFile() on each file.
class Linter {
 public:
  /// Builds the rule set.
  [[nodiscard]] static Result<Linter> Create();

  Linter(Linter&& other) noexcept;
  Linter& operator=(Linter&& other) noexcept;
  ~Linter();

  /// Pass 1: runs every rule's Collect pass over `source`, accumulating
  /// cross-file facts (Status/Result-returning names, lock annotations and
  /// acquisition edges, the metric catalog).
  void CollectDeclarations(const LintSource& source);

  /// Pass 2: runs every rule over `source`, appending to `findings`.
  /// Findings on lines carrying `// lint:allow(<rule>)` are dropped here;
  /// file-level suppressions are the caller's job (SuppressionList).
  void LintFile(const LintSource& source,
                std::vector<LintFinding>* findings) const;

  /// The Status/Result-returning function names collected by pass 1
  /// (exposed for tests/diagnostics).
  const std::set<std::string>& status_returning_functions() const;

 private:
  Linter();

  std::vector<std::unique_ptr<Rule>> rules_;
  std::unique_ptr<Corpus> corpus_;
};

/// Renders a finding as "path:line: [rule] message" plus the source line.
/// Findings with a column render as "path:line:column:" and add a caret
/// line; tabs in the source line are normalized to single spaces so the
/// caret cannot drift on tab-indented code.
std::string FormatFinding(const LintFinding& finding);

/// Expected include-guard macro for a repo-relative header path: the path
/// uppercased with separators mapped to '_', prefixed WEBRBD_, with a
/// leading "src/" stripped (library headers are included as "html/lexer.h").
std::string ExpectedIncludeGuard(std::string_view path);

/// True iff `path` is library code (under src/), where the stricter
/// raw-new-delete and throw-in-library rules apply.
bool IsLibraryPath(std::string_view path);

/// True iff `path` names a file the linter understands (.cc, .cpp, .h).
bool IsLintableSourcePath(std::string_view path);

}  // namespace lint
}  // namespace webrbd

#endif  // WEBRBD_LINT_LINTER_H_
