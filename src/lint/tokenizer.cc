// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "lint/tokenizer.h"

#include <cstddef>

namespace webrbd {
namespace lint {
namespace {

bool IsIdentStart(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

bool IsIdentChar(char c) { return IsIdentStart(c) || IsDigit(c); }

bool IsHorizontalSpace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

/// The multi-character punctuators we munch greedily, longest first.
/// (Only operators a rule could care about need to be here; anything else
/// falls through to single-character tokens.)
constexpr std::string_view kPunct3[] = {"<<=", ">>=", "->*", "...", "<=>"};
constexpr std::string_view kPunct2[] = {"->", "::", "<<", ">>", "<=", ">=",
                                        "==", "!=", "&&", "||", "+=", "-=",
                                        "*=", "/=", "%=", "&=", "|=", "^=",
                                        "++", "--", ".*", "##"};

/// A raw-string prefix is R, uR, UR, LR, or u8R immediately before '"'.
/// `end` is the index one past the candidate prefix (the '"' position).
bool IsRawStringPrefix(std::string_view ident) {
  return ident == "R" || ident == "uR" || ident == "UR" || ident == "LR" ||
         ident == "u8R";
}

bool IsEncodingPrefix(std::string_view ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L";
}

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view source) : src_(source) {}

  std::vector<Token> Run() {
    std::vector<Token> tokens;
    tokens.reserve(src_.size() / 6 + 16);
    bool at_line_start = true;   // only whitespace/comments since newline
    bool in_directive = false;   // inside a preprocessor directive line
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      // Line continuations splice lines everywhere (phase 2): whitespace
      // that keeps a directive alive.
      if (c == '\\' && NextIsNewline(pos_ + 1)) {
        ConsumeSplice();
        continue;
      }
      if (c == '\n') {
        Advance();
        at_line_start = true;
        in_directive = false;
        continue;
      }
      if (IsHorizontalSpace(c)) {
        Advance();
        continue;
      }
      if (c == '/' && pos_ + 1 < src_.size() &&
          (src_[pos_ + 1] == '/' || src_[pos_ + 1] == '*')) {
        tokens.push_back(LexComment(in_directive));
        continue;  // comments do not clear at_line_start
      }
      if (c == '#' && at_line_start) {
        tokens.push_back(LexDirectiveIntro());
        in_directive = true;
        at_line_start = false;
        continue;
      }
      at_line_start = false;
      Token token;
      if (IsIdentStart(c)) {
        token = LexIdentifierOrLiteralPrefix();
      } else if (IsDigit(c) || (c == '.' && pos_ + 1 < src_.size() &&
                                IsDigit(src_[pos_ + 1]))) {
        token = LexNumber();
      } else if (c == '"') {
        token = LexString(pos_);
      } else if (c == '\'') {
        token = LexCharLiteral();
      } else {
        token = LexPunct();
      }
      token.in_directive = in_directive;
      tokens.push_back(token);
    }
    return tokens;
  }

 private:
  bool NextIsNewline(size_t i) const {
    // Accept \r\n as well as \n after the backslash.
    if (i < src_.size() && src_[i] == '\n') return true;
    return i + 1 < src_.size() && src_[i] == '\r' && src_[i + 1] == '\n';
  }

  void ConsumeSplice() {
    Advance();  // backslash
    if (pos_ < src_.size() && src_[pos_] == '\r') Advance();
    if (pos_ < src_.size() && src_[pos_] == '\n') Advance();
  }

  void Advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  Token Begin(TokenKind kind) const {
    Token token;
    token.kind = kind;
    token.offset = pos_;
    token.line = line_;
    token.column = column_;
    return token;
  }

  void Finish(Token* token) const {
    token->text = src_.substr(token->offset, pos_ - token->offset);
  }

  Token LexComment(bool in_directive) {
    Token token = Begin(TokenKind::kComment);
    token.in_directive = in_directive;
    if (src_[pos_ + 1] == '/') {
      while (pos_ < src_.size() && src_[pos_] != '\n') {
        if (src_[pos_] == '\\' && NextIsNewline(pos_ + 1)) {
          ConsumeSplice();  // // comments honor line splices too
        } else {
          Advance();
        }
      }
    } else {
      Advance();  // '/'
      Advance();  // '*'
      while (pos_ < src_.size()) {
        if (src_[pos_] == '*' && pos_ + 1 < src_.size() &&
            src_[pos_ + 1] == '/') {
          Advance();
          Advance();
          break;
        }
        Advance();
      }
    }
    Finish(&token);
    return token;
  }

  Token LexDirectiveIntro() {
    Token token = Begin(TokenKind::kDirective);
    token.in_directive = true;
    Advance();  // '#'
    while (pos_ < src_.size() &&
           (IsHorizontalSpace(src_[pos_]) ||
            (src_[pos_] == '\\' && NextIsNewline(pos_ + 1)))) {
      if (src_[pos_] == '\\') {
        ConsumeSplice();
      } else {
        Advance();
      }
    }
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) Advance();
    Finish(&token);
    return token;
  }

  Token LexIdentifierOrLiteralPrefix() {
    const size_t start = pos_;
    Token token = Begin(TokenKind::kIdentifier);
    while (pos_ < src_.size() && IsIdentChar(src_[pos_])) Advance();
    const std::string_view ident = src_.substr(start, pos_ - start);
    if (pos_ < src_.size() && src_[pos_] == '"') {
      if (IsRawStringPrefix(ident)) return LexRawString(&token);
      if (IsEncodingPrefix(ident)) return LexString(token.offset, &token);
    }
    if (pos_ < src_.size() && src_[pos_] == '\'' &&
        IsEncodingPrefix(ident)) {
      return LexCharLiteral(&token);
    }
    Finish(&token);
    return token;
  }

  Token LexNumber() {
    Token token = Begin(TokenKind::kNumber);
    // pp-number: digits, idents, dots, exponent signs, and ' separators
    // (a separator quote is always followed by an alphanumeric character,
    // which is how 1'000 is distinguished from 1 followed by '\0'... ).
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (IsIdentChar(c) || c == '.') {
        Advance();
      } else if ((c == '+' || c == '-') &&
                 (src_[pos_ - 1] == 'e' || src_[pos_ - 1] == 'E' ||
                  src_[pos_ - 1] == 'p' || src_[pos_ - 1] == 'P')) {
        Advance();
      } else if (c == '\'' && pos_ + 1 < src_.size() &&
                 IsIdentChar(src_[pos_ + 1])) {
        Advance();  // digit separator
      } else {
        break;
      }
    }
    Finish(&token);
    return token;
  }

  /// Lexes "..." starting at src_[pos_] == '"'. When `started` is given,
  /// the token began earlier at an encoding prefix.
  Token LexString(size_t, Token* started = nullptr) {
    Token token = started != nullptr ? *started : Begin(TokenKind::kString);
    token.kind = TokenKind::kString;
    Advance();  // opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\') {
        if (NextIsNewline(pos_ + 1)) {
          ConsumeSplice();
          continue;
        }
        Advance();
        if (pos_ < src_.size() && src_[pos_] != '\n') Advance();
        continue;
      }
      if (c == '"') {
        Advance();
        break;
      }
      if (c == '\n') break;  // unterminated: resync at the newline
      Advance();
    }
    Finish(&token);
    return token;
  }

  Token LexRawString(Token* started) {
    Token token = *started;
    token.kind = TokenKind::kRawString;
    Advance();  // opening quote
    // Collect the delimiter up to '('.
    const size_t delim_start = pos_;
    while (pos_ < src_.size() && src_[pos_] != '(' && src_[pos_] != '\n') {
      Advance();
    }
    if (pos_ >= src_.size() || src_[pos_] != '(') {
      // Malformed; treat like an ordinary string from here.
      Finish(&token);
      return token;
    }
    const std::string_view delim =
        src_.substr(delim_start, pos_ - delim_start);
    Advance();  // '('
    // Scan for )delim"
    while (pos_ < src_.size()) {
      if (src_[pos_] == ')' &&
          src_.compare(pos_ + 1, delim.size(), delim) == 0 &&
          pos_ + 1 + delim.size() < src_.size() &&
          src_[pos_ + 1 + delim.size()] == '"') {
        for (size_t i = 0; i < delim.size() + 2; ++i) Advance();
        break;
      }
      Advance();
    }
    Finish(&token);
    return token;
  }

  Token LexCharLiteral(Token* started = nullptr) {
    Token token =
        started != nullptr ? *started : Begin(TokenKind::kCharLiteral);
    token.kind = TokenKind::kCharLiteral;
    Advance();  // opening quote
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\') {
        Advance();
        if (pos_ < src_.size() && src_[pos_] != '\n') Advance();
        continue;
      }
      if (c == '\'') {
        Advance();
        break;
      }
      if (c == '\n') break;  // unterminated: resync
      Advance();
    }
    Finish(&token);
    return token;
  }

  Token LexPunct() {
    Token token = Begin(TokenKind::kPunct);
    const std::string_view rest = src_.substr(pos_);
    for (std::string_view p : kPunct3) {
      if (rest.substr(0, 3) == p) {
        Advance();
        Advance();
        Advance();
        Finish(&token);
        return token;
      }
    }
    for (std::string_view p : kPunct2) {
      if (rest.substr(0, 2) == p) {
        Advance();
        Advance();
        Finish(&token);
        return token;
      }
    }
    Advance();
    Finish(&token);
    return token;
  }

  const std::string_view src_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
};

}  // namespace

std::vector<Token> Tokenize(std::string_view source) {
  return Tokenizer(source).Run();
}

}  // namespace lint
}  // namespace webrbd
