// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "lint/linter.h"

#include <cctype>
#include <sstream>
#include <utility>

#include "lint/analysis.h"
#include "lint/rules.h"
#include "util/string_util.h"

namespace webrbd {
namespace lint {
namespace {

/// True iff the original line carries an inline `// lint:allow(<rule>)`.
bool HasInlineAllow(std::string_view original_line, std::string_view rule) {
  std::string marker = "lint:allow(" + std::string(rule) + ")";
  return original_line.find(marker) != std::string_view::npos;
}

/// Blanks `count` bytes of `out` starting at `begin`, preserving newlines
/// so line numbers stay aligned.
void BlankRange(std::string* out, size_t begin, size_t count) {
  for (size_t i = begin; i < begin + count && i < out->size(); ++i) {
    if ((*out)[i] != '\n') (*out)[i] = ' ';
  }
}

}  // namespace

void Reporter::Report(std::string_view rule, size_t line, size_t column,
                      std::string message) {
  static const std::string kEmpty;
  const std::string& text = line >= 1 && line <= fa_.lines.size()
                                ? fa_.lines[line - 1]
                                : kEmpty;
  if (HasInlineAllow(text, rule)) return;
  LintFinding finding;
  finding.rule = std::string(rule);
  finding.path = fa_.path;
  finding.line = line;
  finding.message = std::move(message);
  finding.line_text = std::string(StripAsciiWhitespace(text));
  finding.column = column;
  if (column > 0) {
    size_t leading = 0;
    while (leading < text.size() && IsAsciiSpace(text[leading])) ++leading;
    if (column > leading && column - leading <= finding.line_text.size() + 1) {
      finding.caret = column - leading;
    }
  }
  findings_->push_back(std::move(finding));
}

const std::vector<LintRuleInfo>& AllLintRules() {
  static const std::vector<LintRuleInfo> kRules = [] {
    std::vector<LintRuleInfo> rules;
    for (const auto& rule : MakeAllRules()) rules.push_back(rule->info());
    return rules;
  }();
  return kRules;
}

std::string ScrubSource(std::string_view content) {
  std::string out(content);
  for (const Token& token : Tokenize(content)) {
    switch (token.kind) {
      case TokenKind::kComment:
        BlankRange(&out, token.offset, token.text.size());
        break;
      case TokenKind::kString:
      case TokenKind::kCharLiteral: {
        // Keep the delimiters (and any encoding prefix) so the scrubbed
        // text still reads as a literal; blank only the body.
        const size_t open = token.text.find_first_of("\"'");
        if (open == std::string_view::npos) break;
        const size_t body = token.offset + open + 1;
        size_t body_len = token.text.size() - open - 1;
        if (body_len > 0 &&
            (token.text.back() == '"' || token.text.back() == '\'')) {
          --body_len;  // closing delimiter survives
        }
        BlankRange(&out, body, body_len);
        break;
      }
      case TokenKind::kRawString: {
        // R"delim( body )delim": keep prefix and both delimiter sequences.
        const size_t quote = token.text.find('"');
        const size_t open = token.text.find('(', quote);
        if (quote == std::string_view::npos ||
            open == std::string_view::npos) {
          break;
        }
        const size_t close_len = open - quote + 1;  // )delim"
        if (token.text.size() < open + 1 + close_len) break;
        BlankRange(&out, token.offset + open + 1,
                   token.text.size() - open - 1 - close_len);
        break;
      }
      default:
        break;
    }
  }
  return out;
}

std::string ExpectedIncludeGuard(std::string_view path) {
  if (StartsWith(path, "src/")) path.remove_prefix(4);
  std::string guard = "WEBRBD_";
  for (char c : path) {
    if (IsAsciiAlnum(c)) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

bool IsLibraryPath(std::string_view path) {
  return StartsWith(path, "src/");
}

bool IsLintableSourcePath(std::string_view path) {
  return EndsWith(path, ".cc") || EndsWith(path, ".cpp") ||
         EndsWith(path, ".h");
}

Result<SuppressionList> SuppressionList::Parse(std::string_view text) {
  SuppressionList list;
  size_t line_number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    const size_t nl = text.find('\n', start);
    const std::string_view raw_line =
        nl == std::string_view::npos ? text.substr(start)
                                     : text.substr(start, nl - start);
    start = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_number;
    std::string_view line = StripAsciiWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.size() < 2) {
      return Status::ParseError("suppression line " +
                                std::to_string(line_number) +
                                ": expected '<rule> <path-suffix> "
                                "[<line-substring>]'");
    }
    Entry entry;
    entry.rule = tokens[0];
    entry.path_suffix = tokens[1];
    entry.source_line = std::string(line);
    if (tokens.size() > 2) {
      // The substring is everything after the second token, so it may
      // contain spaces.
      size_t pos = line.find(tokens[1]);
      pos = line.find_first_not_of(" \t", pos + tokens[1].size());
      entry.line_substring = std::string(line.substr(pos));
    }
    bool known = entry.rule == "*";
    for (const LintRuleInfo& rule : AllLintRules()) {
      if (entry.rule == rule.name) known = true;
    }
    if (!known) {
      return Status::ParseError("suppression line " +
                                std::to_string(line_number) +
                                ": unknown rule '" + entry.rule + "'");
    }
    list.entries_.push_back(std::move(entry));
  }
  return list;
}

bool SuppressionList::EntryMatches(const Entry& entry,
                                   const LintFinding& finding) const {
  if (entry.rule != "*" && entry.rule != finding.rule) return false;
  if (!EndsWith(finding.path, entry.path_suffix)) return false;
  if (!entry.line_substring.empty() &&
      finding.line_text.find(entry.line_substring) == std::string::npos) {
    return false;
  }
  return true;
}

bool SuppressionList::Matches(const LintFinding& finding) const {
  for (const Entry& entry : entries_) {
    if (EntryMatches(entry, finding)) return true;
  }
  return false;
}

std::vector<std::string> SuppressionList::StaleEntries(
    const std::vector<LintFinding>& findings) const {
  std::vector<std::string> stale;
  for (const Entry& entry : entries_) {
    bool used = false;
    for (const LintFinding& finding : findings) {
      if (EntryMatches(entry, finding)) {
        used = true;
        break;
      }
    }
    if (!used) stale.push_back(entry.source_line);
  }
  return stale;
}

Linter::Linter() = default;
Linter::Linter(Linter&& other) noexcept = default;
Linter& Linter::operator=(Linter&& other) noexcept = default;
Linter::~Linter() = default;

Result<Linter> Linter::Create() {
  Linter linter;
  linter.rules_ = MakeAllRules();
  linter.corpus_ = std::make_unique<Corpus>();
  return linter;
}

void Linter::CollectDeclarations(const LintSource& source) {
  if (!IsLintableSourcePath(source.path)) return;
  const FileAnalysis fa = AnalyzeSource(source.path, source.content);
  for (const auto& rule : rules_) rule->Collect(fa, corpus_.get());
}

void Linter::LintFile(const LintSource& source,
                      std::vector<LintFinding>* findings) const {
  if (!IsLintableSourcePath(source.path)) return;
  const FileAnalysis fa = AnalyzeSource(source.path, source.content);
  Reporter reporter(fa, findings);
  for (const auto& rule : rules_) rule->Check(fa, *corpus_, &reporter);
}

const std::set<std::string>& Linter::status_returning_functions() const {
  return corpus_->status_functions;
}

std::string FormatFinding(const LintFinding& finding) {
  std::ostringstream out;
  out << finding.path << ":" << finding.line;
  if (finding.column > 0) out << ":" << finding.column;
  out << ": [" << finding.rule << "] " << finding.message;
  if (!finding.line_text.empty()) {
    // Tabs render with terminal-dependent widths, which used to push the
    // caret off target; normalize each to one space so byte offsets and
    // display columns agree.
    std::string text = finding.line_text;
    for (char& c : text) {
      if (c == '\t') c = ' ';
    }
    out << "\n    " << text;
    if (finding.caret > 0 && finding.caret <= text.size() + 1) {
      out << "\n    " << std::string(finding.caret - 1, ' ') << "^";
    }
  }
  return out.str();
}

}  // namespace lint
}  // namespace webrbd
