// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "lint/linter.h"

#include <cctype>
#include <sstream>

#include "util/string_util.h"

namespace webrbd {
namespace lint {
namespace {

constexpr std::string_view kLicenseBanner =
    "Copyright (c) the webrbd authors";

bool IsIdentChar(char c) {
  return IsAsciiAlnum(c) || c == '_';
}

std::vector<std::string> SplitLines(std::string_view text) {
  std::vector<std::string> lines;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    if (nl == std::string_view::npos) {
      lines.emplace_back(text.substr(start));
      break;
    }
    lines.emplace_back(text.substr(start, nl - start));
    start = nl + 1;
  }
  return lines;
}

bool IsSourceFile(std::string_view path) {
  return EndsWith(path, ".cc") || EndsWith(path, ".h");
}

/// True iff the original line carries an inline `// lint:allow(<rule>)`.
bool HasInlineAllow(std::string_view original_line, std::string_view rule) {
  std::string marker = "lint:allow(" + std::string(rule) + ")";
  return original_line.find(marker) != std::string_view::npos;
}

void AddFinding(const LintSource& source,
                const std::vector<std::string>& original_lines, size_t line,
                std::string_view rule, std::string message,
                std::vector<LintFinding>* findings) {
  const std::string& text =
      line >= 1 && line <= original_lines.size() ? original_lines[line - 1]
                                                 : std::string();
  if (HasInlineAllow(text, rule)) return;
  LintFinding finding;
  finding.rule = rule;
  finding.path = source.path;
  finding.line = line;
  finding.message = std::move(message);
  finding.line_text = std::string(StripAsciiWhitespace(text));
  findings->push_back(std::move(finding));
}

/// Parses a trailing qualified name + '(' from `s`: `A::B::Name (`.
/// Returns the final identifier, or empty if `s` does not look like one.
std::string QualifiedNameBeforeParen(std::string_view s) {
  s = StripAsciiWhitespace(s);
  std::string last;
  size_t i = 0;
  while (true) {
    size_t begin = i;
    while (i < s.size() && IsIdentChar(s[i])) ++i;
    if (i == begin) return "";
    last = std::string(s.substr(begin, i - begin));
    if (i + 1 < s.size() && s[i] == ':' && s[i + 1] == ':') {
      i += 2;
      continue;
    }
    break;
  }
  while (i < s.size() && IsAsciiSpace(s[i])) ++i;
  if (i < s.size() && s[i] == '(') return last;
  return "";
}

/// Consumes a balanced `<...>` starting at s[pos] == '<'. Returns the index
/// one past the matching '>', or npos if unbalanced on this line.
size_t SkipTemplateArgs(std::string_view s, size_t pos) {
  int depth = 0;
  for (size_t i = pos; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string_view::npos;
}

/// Strips declaration-specifier prefixes that may precede a return type.
std::string_view StripDeclSpecifiers(std::string_view s) {
  static const std::string_view kSpecifiers[] = {
      "[[nodiscard]]", "static", "inline", "constexpr",
      "virtual",       "friend", "explicit"};
  bool stripped = true;
  while (stripped) {
    stripped = false;
    s = StripAsciiWhitespace(s);
    for (std::string_view spec : kSpecifiers) {
      if (StartsWith(s, spec)) {
        std::string_view rest = s.substr(spec.size());
        if (rest.empty() || IsAsciiSpace(rest[0]) || spec.back() == ']') {
          s = rest;
          stripped = true;
        }
      }
    }
  }
  return s;
}

}  // namespace

const std::vector<LintRuleInfo>& AllLintRules() {
  static const std::vector<LintRuleInfo> kRules = {
      {"license-header",
       "every source file starts with the project license banner"},
      {"include-guard", "headers use WEBRBD_<PATH>_H_ include guards"},
      {"banned-function",
       "atoi / strcpy / sprintf are forbidden (unbounded or locale-bound)"},
      {"raw-new-delete",
       "library code (src/) must not use raw new/delete expressions"},
      {"throw-in-library",
       "library code (src/) reports errors via Status, never throw"},
      {"unchecked-status",
       "a Status/Result-returning call must not be a bare statement"},
      {"unguarded-value",
       "x.value() requires a dominating x.ok()/x.has_value() check"},
      {"tagnode-recursion",
       "functions over TagNode iterate with an explicit stack, never "
       "recurse (adversarial nesting overflows the call stack)"},
      {"deprecated-pipeline-entry",
       "src/ and tools/ must not call the deprecated RunIntegratedPipeline/"
       "RunBatchPipeline shims; construct an ExtractionContext instead"},
  };
  return kRules;
}

std::string ScrubSource(std::string_view content) {
  std::string out(content);
  enum class State {
    kNormal,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kNormal;
  std::string raw_close;  // for raw strings: )delim"
  size_t i = 0;
  while (i < out.size()) {
    char c = out[i];
    switch (state) {
      case State::kNormal:
        if (c == '/' && i + 1 < out.size() && out[i + 1] == '/') {
          state = State::kLineComment;
          out[i] = out[i + 1] = ' ';
          i += 2;
        } else if (c == '/' && i + 1 < out.size() && out[i + 1] == '*') {
          state = State::kBlockComment;
          out[i] = out[i + 1] = ' ';
          i += 2;
        } else if (c == '"' && i >= 1 && out[i - 1] == 'R') {
          // R"delim( ... )delim"
          size_t open = out.find('(', i + 1);
          if (open == std::string::npos) {
            ++i;
            break;
          }
          raw_close = ")" + out.substr(i + 1, open - i - 1) + "\"";
          state = State::kRawString;
          i = open + 1;
        } else if (c == '"') {
          state = State::kString;
          ++i;
        } else if (c == '\'') {
          state = State::kChar;
          ++i;
        } else {
          ++i;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kNormal;
        } else {
          out[i] = ' ';
        }
        ++i;
        break;
      case State::kBlockComment:
        if (c == '*' && i + 1 < out.size() && out[i + 1] == '/') {
          out[i] = out[i + 1] = ' ';
          state = State::kNormal;
          i += 2;
        } else {
          if (c != '\n') out[i] = ' ';
          ++i;
        }
        break;
      case State::kString:
      case State::kChar: {
        char close = state == State::kString ? '"' : '\'';
        if (c == '\\' && i + 1 < out.size()) {
          out[i] = ' ';
          if (out[i + 1] != '\n') out[i + 1] = ' ';
          i += 2;
        } else if (c == close) {
          state = State::kNormal;
          ++i;
        } else if (c == '\n') {
          state = State::kNormal;  // unterminated; resync
          ++i;
        } else {
          out[i] = ' ';
          ++i;
        }
        break;
      }
      case State::kRawString:
        if (out.compare(i, raw_close.size(), raw_close) == 0) {
          i += raw_close.size();
          state = State::kNormal;
        } else {
          if (c != '\n') out[i] = ' ';
          ++i;
        }
        break;
    }
  }
  return out;
}

std::string ExpectedIncludeGuard(std::string_view path) {
  if (StartsWith(path, "src/")) path.remove_prefix(4);
  std::string guard = "WEBRBD_";
  for (char c : path) {
    if (IsAsciiAlnum(c)) {
      guard += static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    } else {
      guard += '_';
    }
  }
  guard += '_';
  return guard;
}

bool IsLibraryPath(std::string_view path) {
  return StartsWith(path, "src/");
}

Result<SuppressionList> SuppressionList::Parse(std::string_view text) {
  SuppressionList list;
  size_t line_number = 0;
  for (const std::string& raw_line : SplitLines(text)) {
    ++line_number;
    std::string_view line = StripAsciiWhitespace(raw_line);
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.size() < 2) {
      return Status::ParseError("suppression line " +
                                std::to_string(line_number) +
                                ": expected '<rule> <path-suffix> "
                                "[<line-substring>]'");
    }
    Entry entry;
    entry.rule = tokens[0];
    entry.path_suffix = tokens[1];
    if (tokens.size() > 2) {
      // The substring is everything after the second token, so it may
      // contain spaces.
      size_t pos = line.find(tokens[1]);
      pos = line.find_first_not_of(" \t", pos + tokens[1].size());
      entry.line_substring = std::string(line.substr(pos));
    }
    bool known = entry.rule == "*";
    for (const LintRuleInfo& rule : AllLintRules()) {
      if (entry.rule == rule.name) known = true;
    }
    if (!known) {
      return Status::ParseError("suppression line " +
                                std::to_string(line_number) +
                                ": unknown rule '" + entry.rule + "'");
    }
    list.entries_.push_back(std::move(entry));
  }
  return list;
}

bool SuppressionList::Matches(const LintFinding& finding) const {
  for (const Entry& entry : entries_) {
    if (entry.rule != "*" && entry.rule != finding.rule) continue;
    if (!EndsWith(finding.path, entry.path_suffix)) continue;
    if (!entry.line_substring.empty() &&
        finding.line_text.find(entry.line_substring) == std::string::npos) {
      continue;
    }
    return true;
  }
  return false;
}

Result<Linter> Linter::Create() {
  Linter linter;
  struct PatternSet {
    std::vector<Regex>* target;
    std::vector<std::string_view> patterns;
  };
  const PatternSet sets[] = {
      {&linter.banned_function_regexes_,
       {R"(\b(atoi|strcpy|sprintf)[ \t]*\()"}},
      {&linter.new_delete_regexes_,
       {R"(\bnew[ \t]+[A-Za-z_(])", R"(\bdelete(\[[ \t]*\])?[ \t]+[A-Za-z_*(])"}},
      {&linter.throw_regexes_, {R"(\bthrow\b)"}},
      {&linter.value_call_regexes_,
       {R"([A-Za-z_][A-Za-z0-9_]*\.value\(\))",
        R"(move\([A-Za-z_][A-Za-z0-9_]*\)\.value\(\))"}},
  };
  for (const PatternSet& set : sets) {
    for (std::string_view pattern : set.patterns) {
      auto regex = Regex::Compile(pattern);
      if (!regex.ok()) return regex.status();
      set.target->push_back(std::move(regex).value());
    }
  }
  return linter;
}

void Linter::CollectDeclarations(const LintSource& source) {
  if (!IsSourceFile(source.path)) return;
  const std::vector<std::string> lines = SplitLines(ScrubSource(source.content));
  for (size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = StripDeclSpecifiers(lines[i]);
    std::string_view rest;
    if (StartsWith(line, "Status") && line.size() > 6 &&
        IsAsciiSpace(line[6])) {
      rest = line.substr(7);
    } else if (StartsWith(line, "Result<")) {
      size_t end = SkipTemplateArgs(line, 6);
      if (end == std::string_view::npos) continue;
      rest = line.substr(end);
    } else {
      continue;
    }
    rest = StripAsciiWhitespace(rest);
    std::string name;
    if (rest.empty() && i + 1 < lines.size()) {
      // Return type alone on its line; the declarator starts the next line.
      name = QualifiedNameBeforeParen(lines[i + 1]);
    } else {
      name = QualifiedNameBeforeParen(rest);
    }
    if (!name.empty()) status_functions_.insert(name);
  }
}

void Linter::LintFile(const LintSource& source,
                      std::vector<LintFinding>* findings) const {
  if (!IsSourceFile(source.path)) return;
  const std::vector<std::string> scrubbed_lines =
      SplitLines(ScrubSource(source.content));
  CheckLicenseHeader(source, findings);
  CheckIncludeGuard(source, scrubbed_lines, findings);
  CheckBannedFunctions(source, scrubbed_lines, findings);
  CheckRawNewDelete(source, scrubbed_lines, findings);
  CheckThrow(source, scrubbed_lines, findings);
  CheckUncheckedStatus(source, scrubbed_lines, findings);
  CheckUnguardedValue(source, scrubbed_lines, findings);
  CheckTagNodeRecursion(source, scrubbed_lines, findings);
  CheckDeprecatedPipelineEntry(source, scrubbed_lines, findings);
}

void Linter::CheckLicenseHeader(const LintSource& source,
                                std::vector<LintFinding>* findings) const {
  const std::vector<std::string> lines = SplitLines(source.content);
  if (!lines.empty() && lines[0].find(kLicenseBanner) != std::string::npos) {
    return;
  }
  AddFinding(source, lines, 1, "license-header",
             "file must start with '// " + std::string(kLicenseBanner) +
                 ". Licensed under the Apache License 2.0.'",
             findings);
}

void Linter::CheckIncludeGuard(const LintSource& source,
                               const std::vector<std::string>& scrubbed_lines,
                               std::vector<LintFinding>* findings) const {
  if (!EndsWith(source.path, ".h")) return;
  const std::string expected = ExpectedIncludeGuard(source.path);
  const std::vector<std::string> original_lines = SplitLines(source.content);
  for (size_t i = 0; i < scrubbed_lines.size(); ++i) {
    std::string_view line = StripAsciiWhitespace(scrubbed_lines[i]);
    if (!StartsWith(line, "#ifndef")) continue;
    std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.size() < 2 || tokens[1] != expected) {
      AddFinding(source, original_lines, i + 1, "include-guard",
                 "include guard must be " + expected, findings);
    }
    return;  // only the first #ifndef is the guard
  }
  AddFinding(source, original_lines, 1, "include-guard",
             "header has no include guard (expected " + expected + ")",
             findings);
}

void Linter::CheckBannedFunctions(const LintSource& source,
                                  const std::vector<std::string>& scrubbed_lines,
                                  std::vector<LintFinding>* findings) const {
  const std::vector<std::string> original_lines = SplitLines(source.content);
  for (size_t i = 0; i < scrubbed_lines.size(); ++i) {
    for (const Regex& regex : banned_function_regexes_) {
      for (const RegexMatch& match : regex.FindAll(scrubbed_lines[i])) {
        std::string_view text =
            std::string_view(scrubbed_lines[i])
                .substr(match.begin, match.end - match.begin);
        std::string name(text.substr(0, text.find('(')));
        name = std::string(StripAsciiWhitespace(name));
        AddFinding(source, original_lines, i + 1, "banned-function",
                   "'" + name +
                       "' is banned: use StringToInt/snprintf/std::string "
                       "instead",
                   findings);
      }
    }
  }
}

void Linter::CheckRawNewDelete(const LintSource& source,
                               const std::vector<std::string>& scrubbed_lines,
                               std::vector<LintFinding>* findings) const {
  if (!IsLibraryPath(source.path)) return;
  const std::vector<std::string> original_lines = SplitLines(source.content);
  for (size_t i = 0; i < scrubbed_lines.size(); ++i) {
    for (const Regex& regex : new_delete_regexes_) {
      if (regex.PartialMatch(scrubbed_lines[i])) {
        AddFinding(source, original_lines, i + 1, "raw-new-delete",
                   "raw new/delete in library code: use std::make_unique / "
                   "std::make_shared or a container",
                   findings);
        break;
      }
    }
  }
}

void Linter::CheckThrow(const LintSource& source,
                        const std::vector<std::string>& scrubbed_lines,
                        std::vector<LintFinding>* findings) const {
  if (!IsLibraryPath(source.path)) return;
  const std::vector<std::string> original_lines = SplitLines(source.content);
  for (size_t i = 0; i < scrubbed_lines.size(); ++i) {
    for (const Regex& regex : throw_regexes_) {
      if (regex.PartialMatch(scrubbed_lines[i])) {
        AddFinding(source, original_lines, i + 1, "throw-in-library",
                   "library code reports errors via Status/Result, never "
                   "exceptions",
                   findings);
        break;
      }
    }
  }
}

void Linter::CheckUncheckedStatus(const LintSource& source,
                                  const std::vector<std::string>& scrubbed_lines,
                                  std::vector<LintFinding>* findings) const {
  const std::vector<std::string> original_lines = SplitLines(source.content);
  for (size_t i = 0; i < scrubbed_lines.size(); ++i) {
    std::string_view line = StripAsciiWhitespace(scrubbed_lines[i]);
    if (line.empty() || line[0] == '#') continue;

    // Statement position: the previous non-blank line must have ended a
    // statement or opened a block; otherwise this line is a continuation.
    bool statement_start = true;
    for (size_t j = i; j-- > 0;) {
      std::string_view prev = StripAsciiWhitespace(scrubbed_lines[j]);
      if (prev.empty()) continue;
      if (StartsWith(prev, "#")) break;
      char last = prev.back();
      statement_start = last == ';' || last == '{' || last == '}' ||
                        last == ':' || last == ')' || prev == "else";
      break;
    }
    if (!statement_start) continue;

    // Parse an optional receiver chain (`obj.`, `ptr->`, `Class::`)
    // followed by a callee name and '('.
    size_t pos = 0;
    std::string callee;
    while (true) {
      size_t begin = pos;
      while (pos < line.size() && IsIdentChar(line[pos])) ++pos;
      if (pos == begin) {
        callee.clear();
        break;
      }
      callee = std::string(line.substr(begin, pos - begin));
      if (pos < line.size() && line[pos] == '.') {
        ++pos;
      } else if (pos + 1 < line.size() && line[pos] == '-' &&
                 line[pos + 1] == '>') {
        pos += 2;
      } else if (pos + 1 < line.size() && line[pos] == ':' &&
                 line[pos + 1] == ':') {
        pos += 2;
      } else {
        break;
      }
    }
    if (callee.empty() || pos >= line.size() || line[pos] != '(') continue;
    if (status_functions_.find(callee) == status_functions_.end()) continue;

    // Walk to the call's matching ')' (possibly lines below) and see what
    // consumes the return value. A bare ';' means it was discarded.
    int depth = 0;
    size_t row = i;
    size_t col = scrubbed_lines[i].find_first_not_of(" \t") + pos;
    bool resolved = false;
    bool discarded = false;
    for (size_t scanned = 0; row < scrubbed_lines.size() && scanned < 100;
         ++row, ++scanned) {
      const std::string& text = scrubbed_lines[row];
      for (size_t k = row == i ? col : 0; k < text.size(); ++k) {
        if (text[k] == '(') ++depth;
        if (text[k] == ')') {
          --depth;
          if (depth == 0) {
            size_t next = text.find_first_not_of(" \t", k + 1);
            discarded = next != std::string::npos && text[next] == ';';
            resolved = true;
            break;
          }
        }
      }
      if (resolved) break;
      if (depth == 0) break;
    }
    if (resolved && discarded) {
      AddFinding(source, original_lines, i + 1, "unchecked-status",
                 "result of Status/Result-returning call '" + callee +
                     "' is discarded; check it, propagate it with "
                     "WEBRBD_RETURN_IF_ERROR, or cast to void",
                 findings);
    }
  }
}

void Linter::CheckUnguardedValue(const LintSource& source,
                                 const std::vector<std::string>& scrubbed_lines,
                                 std::vector<LintFinding>* findings) const {
  const std::vector<std::string> original_lines = SplitLines(source.content);
  for (size_t i = 0; i < scrubbed_lines.size(); ++i) {
    const std::string& line = scrubbed_lines[i];
    for (const Regex& regex : value_call_regexes_) {
      for (const RegexMatch& match : regex.FindAll(line)) {
        std::string_view text =
            std::string_view(line).substr(match.begin, match.end - match.begin);
        // The identifier is either before the first '.' (x.value()) or
        // inside move(...) (std::move(x).value()).
        std::string ident;
        if (StartsWith(text, "move(")) {
          size_t close = text.find(')');
          ident = std::string(text.substr(5, close - 5));
        } else {
          ident = std::string(text.substr(0, text.find('.')));
        }

        // Scan back to the start of the enclosing function (first line whose
        // first column is non-blank) looking for a dominating guard.
        const std::vector<std::string> guards = {
            ident + ".ok(",        ident + "->ok(",
            ident + ".has_value(", "(" + ident + ")",
            "(!" + ident + ")",    "(*" + ident + ")",
        };
        bool guarded = false;
        size_t j = i + 1;
        while (j-- > 0) {
          const std::string& candidate = scrubbed_lines[j];
          for (const std::string& guard : guards) {
            if (candidate.find(guard) != std::string::npos) {
              // The guard must not be the value() expression itself.
              if (j == i && candidate.find(guard) == match.begin) continue;
              guarded = true;
              break;
            }
          }
          if (guarded) break;
          if (j < i && !candidate.empty() && !IsAsciiSpace(candidate[0])) {
            break;  // reached the enclosing function's signature
          }
        }
        if (!guarded) {
          AddFinding(source, original_lines, i + 1, "unguarded-value",
                     "'" + ident +
                         ".value()' has no dominating '" + ident +
                         ".ok()' (or has_value) check in this scope",
                     findings);
        }
      }
    }
  }
}

void Linter::CheckTagNodeRecursion(
    const LintSource& source, const std::vector<std::string>& scrubbed_lines,
    std::vector<LintFinding>* findings) const {
  if (!IsLibraryPath(source.path)) return;
  const std::vector<std::string> original_lines = SplitLines(source.content);

  // Returns the position of a `name(` call on `line` (word boundary on the
  // left, optional spaces before '('), or npos.
  auto find_call = [](std::string_view line, const std::string& name,
                      size_t from) -> size_t {
    for (size_t pos = line.find(name, from); pos != std::string_view::npos;
         pos = line.find(name, pos + 1)) {
      if (pos > 0 && IsIdentChar(line[pos - 1])) continue;
      size_t after = pos + name.size();
      while (after < line.size() && IsAsciiSpace(line[after])) ++after;
      if (after < line.size() && line[after] == '(') return pos;
    }
    return std::string_view::npos;
  };

  for (size_t i = 0; i < scrubbed_lines.size(); ++i) {
    const std::string& line = scrubbed_lines[i];
    const size_t type_pos = line.find("TagNode");
    if (type_pos == std::string::npos) continue;
    // A parameter of TagNode type: the '(' opening the list precedes the
    // type on the same line, with the function name right before it.
    const size_t paren = line.rfind('(', type_pos);
    if (paren == std::string::npos) continue;
    // The identifier directly before the '(' is the function name.
    size_t name_end = paren;
    while (name_end > 0 && IsAsciiSpace(line[name_end - 1])) --name_end;
    size_t name_begin = name_end;
    while (name_begin > 0 && IsIdentChar(line[name_begin - 1])) --name_begin;
    const std::string name = line.substr(name_begin, name_end - name_begin);
    static const std::set<std::string> kNotFunctions = {
        "if", "for", "while", "switch", "return", "sizeof", "catch",
        "TagNode"};
    if (name.empty() || kNotFunctions.count(name) > 0) continue;

    // Walk past the parameter list; a definition opens '{' before any ';'.
    int paren_depth = 0;
    size_t row = i;
    size_t col = paren;
    bool is_definition = false;
    size_t body_row = 0;
    size_t body_col = 0;
    bool resolved = false;
    for (size_t scanned = 0; row < scrubbed_lines.size() && scanned < 10 &&
                             !resolved;
         ++row, ++scanned) {
      const std::string& text = scrubbed_lines[row];
      for (size_t k = row == i ? col : 0; k < text.size(); ++k) {
        if (text[k] == '(') ++paren_depth;
        if (text[k] == ')') --paren_depth;
        if (paren_depth > 0) continue;
        if (text[k] == ';') {
          resolved = true;  // declaration only
          break;
        }
        if (text[k] == '{') {
          is_definition = true;
          body_row = row;
          body_col = k + 1;
          resolved = true;
          break;
        }
      }
    }
    if (!is_definition) continue;

    // Scan the body (indentation-bounded by brace depth) for a self-call.
    int brace_depth = 1;
    row = body_row;
    for (size_t scanned = 0;
         row < scrubbed_lines.size() && brace_depth > 0 && scanned < 400;
         ++row, ++scanned) {
      const std::string& text = scrubbed_lines[row];
      const size_t start = row == body_row ? body_col : 0;
      size_t end = text.size();
      for (size_t k = start; k < text.size(); ++k) {
        if (text[k] == '{') ++brace_depth;
        if (text[k] == '}' && --brace_depth == 0) {
          end = k;  // the body ends here; ignore the rest of the line
          break;
        }
      }
      const size_t call = find_call(text.substr(0, end), name, start);
      if (call != std::string_view::npos) {
        AddFinding(source, original_lines, row + 1, "tagnode-recursion",
                   "'" + name +
                       "' takes a TagNode and calls itself; adversarial "
                       "nesting depth overflows the call stack — iterate "
                       "with an explicit stack (see PreOrderVisit)",
                   findings);
        break;
      }
    }
  }
}

void Linter::CheckDeprecatedPipelineEntry(
    const LintSource& source, const std::vector<std::string>& scrubbed_lines,
    std::vector<LintFinding>* findings) const {
  // Only library and tool code is held to the new API; tests and bench
  // exercise the shims on purpose (golden equivalence, migration cost).
  if (!StartsWith(source.path, "src/") && !StartsWith(source.path, "tools/")) {
    return;
  }
  // The shims themselves necessarily name the deprecated entry points.
  static const std::vector<std::string_view> kShimFiles = {
      "src/extract/integrated_pipeline.h", "src/extract/integrated_pipeline.cc",
      "src/extract/batch_pipeline.h", "src/extract/batch_pipeline.cc"};
  for (std::string_view shim : kShimFiles) {
    if (source.path == shim) return;
  }
  const std::vector<std::string> original_lines = SplitLines(source.content);
  static const std::vector<std::string_view> kDeprecated = {
      "RunIntegratedPipeline", "RunBatchPipeline"};
  for (size_t i = 0; i < scrubbed_lines.size(); ++i) {
    const std::string& line = scrubbed_lines[i];
    for (std::string_view name : kDeprecated) {
      for (size_t pos = line.find(name); pos != std::string::npos;
           pos = line.find(name, pos + 1)) {
        if (pos > 0 && IsIdentChar(line[pos - 1])) continue;
        size_t after = pos + name.size();
        while (after < line.size() && IsAsciiSpace(line[after])) ++after;
        if (after >= line.size() || line[after] != '(') continue;
        AddFinding(source, original_lines, i + 1, "deprecated-pipeline-entry",
                   "'" + std::string(name) +
                       "' is a deprecated shim; build an ExtractionContext "
                       "once and call ExtractDocument/ExtractCorpus",
                   findings);
      }
    }
  }
}

std::string FormatFinding(const LintFinding& finding) {
  std::ostringstream out;
  out << finding.path << ":" << finding.line << ": [" << finding.rule << "] "
      << finding.message;
  if (!finding.line_text.empty()) {
    out << "\n    " << finding.line_text;
  }
  return out.str();
}

}  // namespace lint
}  // namespace webrbd
