// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// lock-discipline: two related checks over the lock annotations from
// util/thread_annotations.h and the lock sites themselves.
//
// 1. Lock ordering. The Collect pass builds a lock-acquisition graph: an
//    edge (A, B) means some function acquired B while holding A (scoped
//    RAII acquisitions — MutexLock, std::lock_guard/unique_lock/scoped_lock
//    — scoped to their enclosing block, plus explicit .lock() calls scoped
//    to end of block). The Check pass flags every site whose edge (A, B)
//    coexists with a reverse edge (B, A) anywhere in the corpus: a
//    deadlock-capable ordering inversion.
//
// 2. Guarded fields. Fields annotated WEBRBD_GUARDED_BY(mu) must only be
//    touched in scopes that hold `mu` — via a local RAII acquisition or a
//    WEBRBD_REQUIRES(mu) contract on the enclosing function. To keep
//    same-named fields of unrelated classes from cross-talking, the check
//    runs only in the files sharing the declaring header's stem
//    ("src/util/thread_pool" covers the .h and the .cc). Calls to
//    functions annotated WEBRBD_REQUIRES / WEBRBD_EXCLUDES are checked
//    against the same held-set (bare calls only; cross-object calls are
//    clang -Wthread-safety's job, which CI runs as a separate pass).

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/analysis.h"
#include "lint/rules.h"
#include "util/string_util.h"

namespace webrbd {
namespace lint {
namespace {

constexpr size_t kNpos = static_cast<size_t>(-1);

/// File path without its extension, the unit of guarded-field locality.
std::string PathStem(std::string_view path) {
  const size_t dot = path.rfind('.');
  return std::string(dot == std::string_view::npos ? path
                                                   : path.substr(0, dot));
}

/// One lock acquisition: `mutex` is held over code-indices
/// [at, scope_end).
struct Acquisition {
  std::string mutex;
  size_t at = 0;
  size_t scope_end = 0;
  size_t line = 0;
};

/// The last identifier inside the bracket group opened at `open_ci`,
/// ignoring `&` and `this`: `(&pool->mu_)` -> "mu_".
std::string LastIdentInGroup(const FileAnalysis& fa, size_t open_ci) {
  const size_t close = MatchingClose(fa, open_ci);
  if (close == kNpos) return "";
  std::string last;
  for (size_t ci = open_ci + 1; ci + 1 < close; ++ci) {
    const Token& token = fa.Code(ci);
    if (token.IsIdent() && !token.Is("this")) last = std::string(token.text);
  }
  return last;
}

/// End (exclusive) of the innermost block containing code-index `ci`,
/// bounded below by `lower` and above by `upper`.
size_t EnclosingBlockEnd(const FileAnalysis& fa, size_t ci, size_t lower,
                         size_t upper) {
  int depth = 0;
  for (size_t j = ci; j-- > lower;) {
    const std::string_view t = fa.CodeText(j);
    if (t == "}") {
      ++depth;
    } else if (t == "{") {
      if (depth == 0) {
        const size_t end = MatchingClose(fa, j);
        return end == kNpos ? upper : std::min(end, upper);
      }
      --depth;
    }
  }
  return upper;
}

/// All acquisitions inside one function body, in token order.
std::vector<Acquisition> FindAcquisitions(const FileAnalysis& fa,
                                          const FunctionDef& def) {
  std::vector<Acquisition> acquisitions;
  auto add = [&](std::string mutex, size_t ci) {
    if (mutex.empty()) return;
    Acquisition acq;
    acq.mutex = std::move(mutex);
    acq.at = ci;
    acq.scope_end =
        EnclosingBlockEnd(fa, ci, def.body_begin + 1, def.body_end);
    acq.line = fa.Code(ci).line;
    acquisitions.push_back(std::move(acq));
  };
  for (size_t ci = def.body_begin + 1; ci + 1 < def.body_end; ++ci) {
    const Token& token = fa.Code(ci);
    if (!token.IsIdent() || token.in_directive) continue;
    // `MutexLock lock(&mu_);` — the project's annotated RAII guard.
    if (token.Is("MutexLock") && fa.Code(ci + 1).IsIdent() &&
        fa.CodeText(ci + 2) == "(") {
      add(LastIdentInGroup(fa, ci + 2), ci);
      continue;
    }
    // `std::lock_guard<std::mutex> l(mu_);` and friends.
    if (token.Is("lock_guard") || token.Is("unique_lock") ||
        token.Is("scoped_lock")) {
      size_t p = ci + 1;
      if (fa.CodeText(p) == "<") {
        p = SkipTemplateArgs(fa, p);
        if (p == kNpos) continue;
      }
      if (p < fa.code_size() && fa.Code(p).IsIdent() &&
          fa.CodeText(p + 1) == "(") {
        add(LastIdentInGroup(fa, p + 1), ci);
      }
      continue;
    }
    // Explicit `mu_.lock();` — held until end of block (heuristic).
    if ((fa.CodeText(ci + 1) == "." || fa.CodeText(ci + 1) == "->") &&
        fa.CodeText(ci + 2) == "lock" && fa.CodeText(ci + 3) == "(" &&
        fa.CodeText(ci + 4) == ")") {
      add(std::string(token.text), ci);
      continue;
    }
  }
  return acquisitions;
}

class LockDisciplineRule : public Rule {
 public:
  LintRuleInfo info() const override {
    return {"lock-discipline",
            "lock acquisition order must be globally consistent and "
            "WEBRBD_GUARDED_BY fields must be accessed with their mutex "
            "held"};
  }

  void Collect(const FileAnalysis& fa, Corpus* corpus) override {
    if (!StartsWith(fa.path, "src/")) return;
    const std::string stem = PathStem(fa.path);

    for (size_t ci = 0; ci < fa.code_size(); ++ci) {
      const Token& token = fa.Code(ci);
      if (!token.IsIdent()) continue;
      // `Type field_ WEBRBD_GUARDED_BY(mu_);`
      if (token.Is("WEBRBD_GUARDED_BY") && fa.CodeText(ci + 1) == "(" &&
          ci > 0 && fa.Code(ci - 1).IsIdent()) {
        Corpus::GuardedField field;
        field.mutex = LastIdentInGroup(fa, ci + 1);
        field.stem = stem;
        field.path = fa.path;
        field.line = fa.Code(ci - 1).line;
        if (!field.mutex.empty()) {
          corpus->guarded_fields.emplace(std::string(fa.CodeText(ci - 1)),
                                         std::move(field));
        }
      }
      // `void Drain() WEBRBD_REQUIRES(mu_);` / `... WEBRBD_EXCLUDES(mu_)`
      if ((token.Is("WEBRBD_REQUIRES") || token.Is("WEBRBD_EXCLUDES")) &&
          fa.CodeText(ci + 1) == "(") {
        const std::string fn = FunctionNameBeforeAnnotation(fa, ci);
        const std::string mutex = LastIdentInGroup(fa, ci + 1);
        if (!fn.empty() && !mutex.empty()) {
          Corpus::FnContract& contract = corpus->fn_contracts[fn];
          contract.stem = stem;
          if (token.Is("WEBRBD_REQUIRES")) {
            contract.requires_held.insert(mutex);
          } else {
            contract.excludes_held.insert(mutex);
          }
        }
      }
    }

    // Lock-order edges.
    for (const FunctionDef& def : FindFunctions(fa)) {
      if (!def.is_definition) continue;
      const std::vector<Acquisition> acqs = FindAcquisitions(fa, def);
      for (size_t i = 0; i < acqs.size(); ++i) {
        for (size_t j = i + 1; j < acqs.size(); ++j) {
          if (acqs[j].at >= acqs[i].scope_end) continue;
          if (acqs[i].mutex == acqs[j].mutex) continue;
          corpus->lock_edges.emplace(
              std::make_pair(acqs[i].mutex, acqs[j].mutex),
              Corpus::LockSite{fa.path, acqs[j].line});
        }
      }
    }
  }

  void Check(const FileAnalysis& fa, const Corpus& corpus,
             Reporter* reporter) const override {
    if (!StartsWith(fa.path, "src/")) return;
    const std::string stem = PathStem(fa.path);
    const std::vector<FunctionDef> defs = FindFunctions(fa);

    std::set<std::pair<std::string, std::string>> reported_pairs;
    for (const FunctionDef& def : defs) {
      if (!def.is_definition) continue;
      const std::vector<Acquisition> acqs = FindAcquisitions(fa, def);

      // 1. Ordering inversions against the whole-corpus edge set.
      for (size_t i = 0; i < acqs.size(); ++i) {
        for (size_t j = i + 1; j < acqs.size(); ++j) {
          if (acqs[j].at >= acqs[i].scope_end) continue;
          if (acqs[i].mutex == acqs[j].mutex) continue;
          const auto reverse = corpus.lock_edges.find(
              std::make_pair(acqs[j].mutex, acqs[i].mutex));
          if (reverse == corpus.lock_edges.end()) continue;
          if (!reported_pairs
                   .insert(std::make_pair(acqs[i].mutex, acqs[j].mutex))
                   .second) {
            continue;
          }
          reporter->ReportAt(
              info().name, fa.Code(acqs[j].at),
              "'" + acqs[j].mutex + "' acquired while holding '" +
                  acqs[i].mutex + "', but the opposite order exists at " +
                  reverse->second.path + ":" +
                  std::to_string(reverse->second.line) +
                  " — pick one global order to avoid deadlock");
        }
      }

      // 2. Guarded fields and annotated calls inside this function.
      const Corpus::FnContract* contract = ContractFor(corpus, def, stem);
      for (size_t ci = def.body_begin + 1; ci + 1 < def.body_end; ++ci) {
        const Token& token = fa.Code(ci);
        if (!token.IsIdent() || token.in_directive) continue;
        const std::string name(token.text);

        const auto field = corpus.guarded_fields.find(name);
        if (field != corpus.guarded_fields.end() &&
            field->second.stem == stem &&
            fa.CodeText(ci + 1) != "WEBRBD_GUARDED_BY" &&
            fa.CodeText(ci - 1) != "." && fa.CodeText(ci - 1) != "->" &&
            !MutexHeld(fa, acqs, contract, ci, field->second.mutex)) {
          reporter->ReportAt(
              info().name, token,
              "'" + name + "' is annotated WEBRBD_GUARDED_BY(" +
                  field->second.mutex + ") (" + field->second.path + ":" +
                  std::to_string(field->second.line) +
                  ") but is accessed without holding '" +
                  field->second.mutex + "'");
        }

        // Bare call to a REQUIRES/EXCLUDES-annotated same-stem function.
        if (fa.CodeText(ci + 1) != "(") continue;
        if (IsDefinitionName(defs, ci)) continue;
        const std::string_view prev = ci > 0 ? fa.CodeText(ci - 1) : "";
        if (prev == "." || prev == "->" || prev == "::" || prev == "&") {
          continue;
        }
        const auto fn = corpus.fn_contracts.find(name);
        if (fn == corpus.fn_contracts.end() || fn->second.stem != stem) {
          continue;
        }
        for (const std::string& mutex : fn->second.requires_held) {
          if (!MutexHeld(fa, acqs, contract, ci, mutex)) {
            reporter->ReportAt(info().name, token,
                               "call to '" + name +
                                   "' requires holding '" + mutex +
                                   "' (WEBRBD_REQUIRES)");
          }
        }
        for (const std::string& mutex : fn->second.excludes_held) {
          if (MutexHeld(fa, acqs, contract, ci, mutex)) {
            reporter->ReportAt(info().name, token,
                               "call to '" + name + "' must not hold '" +
                                   mutex + "' (WEBRBD_EXCLUDES): it "
                                   "acquires that mutex itself");
          }
        }
      }
    }
  }

 private:
  /// The declarator name annotated at code-index `macro_ci`: the
  /// identifier before the '(' opening the parameter list that precedes
  /// the annotation (`void Drain() WEBRBD_REQUIRES(mu_)` -> "Drain").
  static std::string FunctionNameBeforeAnnotation(const FileAnalysis& fa,
                                                  size_t macro_ci) {
    int depth = 0;
    for (size_t j = macro_ci; j-- > 0;) {
      const std::string_view t = fa.CodeText(j);
      if (t == ")") ++depth;
      if (t == "(") {
        if (--depth == 0) {
          return j > 0 && fa.Code(j - 1).IsIdent()
                     ? std::string(fa.CodeText(j - 1))
                     : std::string();
        }
      }
      if (depth == 0 && (t == ";" || t == "}")) break;
    }
    return "";
  }

  static const Corpus::FnContract* ContractFor(const Corpus& corpus,
                                               const FunctionDef& def,
                                               const std::string& stem) {
    const auto it = corpus.fn_contracts.find(def.name);
    if (it == corpus.fn_contracts.end() || it->second.stem != stem) {
      return nullptr;
    }
    return &it->second;
  }

  static bool MutexHeld(const FileAnalysis& fa,
                        const std::vector<Acquisition>& acqs,
                        const Corpus::FnContract* contract, size_t ci,
                        const std::string& mutex) {
    (void)fa;
    if (contract != nullptr && contract->requires_held.count(mutex) > 0) {
      return true;
    }
    for (const Acquisition& acq : acqs) {
      if (acq.mutex == mutex && acq.at < ci && ci < acq.scope_end) {
        return true;
      }
    }
    return false;
  }

  static bool IsDefinitionName(const std::vector<FunctionDef>& defs,
                               size_t ci) {
    for (const FunctionDef& def : defs) {
      if (def.name_ci == ci) return true;
    }
    return false;
  }
};

}  // namespace

std::unique_ptr<Rule> MakeLockDisciplineRule() {
  return std::make_unique<LockDisciplineRule>();
}

}  // namespace lint
}  // namespace webrbd
