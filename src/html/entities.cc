// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "html/entities.h"

#include <map>

#include "util/string_util.h"

namespace webrbd {

namespace {

// Named entities of the HTML 3.2/4.0 era, with ASCII fallbacks for glyphs
// outside 7-bit ASCII (the synthetic corpus and the paper's heuristics are
// ASCII-oriented; see util/string_util.h).
const std::map<std::string, std::string, std::less<>>& NamedEntities() {
  static const std::map<std::string, std::string, std::less<>> kEntities = {
      {"amp", "&"},     {"lt", "<"},       {"gt", ">"},
      {"quot", "\""},   {"apos", "'"},     {"nbsp", " "},
      {"copy", "(c)"},  {"reg", "(R)"},    {"trade", "(TM)"},
      {"mdash", "--"},  {"ndash", "-"},    {"hellip", "..."},
      {"lsquo", "'"},   {"rsquo", "'"},    {"ldquo", "\""},
      {"rdquo", "\""},  {"middot", "*"},   {"bull", "*"},
      {"sect", "S"},    {"para", "P"},     {"deg", " deg"},
      {"frac12", "1/2"},{"frac14", "1/4"}, {"cent", "c"},
      {"pound", "GBP"}, {"yen", "JPY"},    {"times", "x"},
      {"divide", "/"},  {"plusmn", "+/-"},
      {"eacute", "e"},  {"egrave", "e"},   {"agrave", "a"},
      {"aacute", "a"},  {"iacute", "i"},   {"oacute", "o"},
      {"uacute", "u"},  {"ntilde", "n"},   {"ccedil", "c"},
      {"ouml", "o"},    {"uuml", "u"},     {"auml", "a"},
  };
  return kEntities;
}

// Decodes the reference beginning at text[start] (which is '&'). On
// success sets *consumed and *decoded and returns true.
bool DecodeOne(std::string_view text, size_t start, size_t* consumed,
               std::string* decoded) {
  const size_t semi = text.find(';', start + 1);
  // Entity names are short; a distant semicolon means a bare ampersand.
  if (semi == std::string_view::npos || semi == start + 1 ||
      semi - start > 10) {
    return false;
  }
  std::string_view body = text.substr(start + 1, semi - start - 1);
  if (body[0] == '#') {
    // Numeric reference.
    int code = 0;
    bool any = false;
    if (body.size() > 1 && (body[1] == 'x' || body[1] == 'X')) {
      for (size_t i = 2; i < body.size(); ++i) {
        const char c = body[i];
        int digit;
        if (IsAsciiDigit(c)) digit = c - '0';
        else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
        else return false;
        code = code * 16 + digit;
        any = true;
        if (code > 0x10FFFF) return false;
      }
    } else {
      for (size_t i = 1; i < body.size(); ++i) {
        if (!IsAsciiDigit(body[i])) return false;
        code = code * 10 + (body[i] - '0');
        any = true;
        if (code > 0x10FFFF) return false;
      }
    }
    if (!any || code == 0) return false;
    *decoded = code < 128 ? std::string(1, static_cast<char>(code))
                          : std::string("?");
    *consumed = semi - start + 1;
    return true;
  }
  auto it = NamedEntities().find(body);
  if (it == NamedEntities().end()) return false;
  *decoded = it->second;
  *consumed = semi - start + 1;
  return true;
}

}  // namespace

std::string DecodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '&') {
      size_t consumed = 0;
      std::string decoded;
      if (DecodeOne(text, i, &consumed, &decoded)) {
        out += decoded;
        i += consumed;
        continue;
      }
    }
    out.push_back(text[i]);
    ++i;
  }
  return out;
}

std::string EncodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace webrbd
