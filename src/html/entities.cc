// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Entity decoding on the bulk-copy model: DecodeEntities locates each '&'
// with a word-at-a-time scan (util/swar.h) and copies the un-entitied
// stretches between them in bulk — text with no references at all (the
// overwhelming common case) is returned as one copy without ever looking
// at individual bytes. Named references resolve through a perfect-hash
// table built at compile time over the fixed HTML 3.2/4.0-era entity set;
// collision-freedom is enforced by static_assert, so lookup is one hash,
// one slot probe, one verifying compare — no tree walk, no heap.

#include "html/entities.h"

#include <array>
#include <cstdint>

#include "util/string_util.h"
#include "util/swar.h"

namespace webrbd {

namespace {

// Named entities of the HTML 3.2/4.0 era, with ASCII fallbacks for glyphs
// outside 7-bit ASCII (the synthetic corpus and the paper's heuristics are
// ASCII-oriented; see util/string_util.h).
struct EntityEntry {
  std::string_view name;
  std::string_view value;
};

constexpr EntityEntry kNamedEntities[] = {
    {"amp", "&"},     {"lt", "<"},       {"gt", ">"},
    {"quot", "\""},   {"apos", "'"},     {"nbsp", " "},
    {"copy", "(c)"},  {"reg", "(R)"},    {"trade", "(TM)"},
    {"mdash", "--"},  {"ndash", "-"},    {"hellip", "..."},
    {"lsquo", "'"},   {"rsquo", "'"},    {"ldquo", "\""},
    {"rdquo", "\""},  {"middot", "*"},   {"bull", "*"},
    {"sect", "S"},    {"para", "P"},     {"deg", " deg"},
    {"frac12", "1/2"},{"frac14", "1/4"}, {"cent", "c"},
    {"pound", "GBP"}, {"yen", "JPY"},    {"times", "x"},
    {"divide", "/"},  {"plusmn", "+/-"},
    {"eacute", "e"},  {"egrave", "e"},   {"agrave", "a"},
    {"aacute", "a"},  {"iacute", "i"},   {"oacute", "o"},
    {"uacute", "u"},  {"ntilde", "n"},   {"ccedil", "c"},
    {"ouml", "o"},    {"uuml", "u"},     {"auml", "a"},
};

constexpr size_t kEntityCount =
    sizeof(kNamedEntities) / sizeof(kNamedEntities[0]);
constexpr size_t kEntityTableSize = 256;  // power of two; ~6x load headroom

static_assert(kEntityCount < 255,
              "slot indexes are stored as uint8_t (0 = empty)");

// FNV-1a with a searched seed: FindEntitySeed walks seeds at compile time
// until every entity name lands in a distinct slot, making the table a
// true perfect hash for this fixed set. Adding an entity re-runs the
// search automatically; it can slow compilation slightly but cannot break
// correctness (the static_assert below guards the search's contract).
constexpr uint32_t EntityHash(std::string_view s, uint32_t seed) {
  uint32_t h = seed;
  for (const char c : s) {
    h = (h ^ static_cast<uint8_t>(c)) * 16777619u;
  }
  return h;
}

// Folds the high hash bits into the slot before the power-of-two modulo.
// Without this the slot would depend only on the hash's low byte — and,
// because FNV's low bits are a function of the seed's low bits alone, the
// seed search would cycle through a handful of effective variants and
// could never find a collision-free one.
constexpr uint32_t EntitySlot(std::string_view s, uint32_t seed) {
  uint32_t h = EntityHash(s, seed);
  h ^= h >> 16;
  h ^= h >> 8;
  return h % kEntityTableSize;
}

constexpr bool SeedIsCollisionFree(uint32_t seed) {
  bool used[kEntityTableSize] = {};
  for (const EntityEntry& entry : kNamedEntities) {
    const uint32_t slot = EntitySlot(entry.name, seed);
    if (used[slot]) return false;
    used[slot] = true;
  }
  return true;
}

constexpr uint32_t FindEntitySeed() {
  for (uint32_t seed = 0x811c9dc5u;; ++seed) {
    if (SeedIsCollisionFree(seed)) return seed;
  }
}

constexpr uint32_t kEntitySeed = FindEntitySeed();
static_assert(SeedIsCollisionFree(kEntitySeed),
              "entity hash table must be collision-free");

constexpr std::array<uint8_t, kEntityTableSize> BuildEntityTable() {
  std::array<uint8_t, kEntityTableSize> table{};  // 0 = empty, else index+1
  for (size_t i = 0; i < kEntityCount; ++i) {
    table[EntitySlot(kNamedEntities[i].name, kEntitySeed)] =
        static_cast<uint8_t>(i + 1);
  }
  return table;
}

constexpr std::array<uint8_t, kEntityTableSize> kEntityTable =
    BuildEntityTable();

const EntityEntry* FindNamedEntity(std::string_view body) {
  const uint8_t slot = kEntityTable[EntitySlot(body, kEntitySeed)];
  if (slot == 0) return nullptr;
  const EntityEntry& entry = kNamedEntities[slot - 1];
  return entry.name == body ? &entry : nullptr;
}

// Decodes the reference beginning at text[start] (which is '&'). On
// success sets *consumed and *decoded and returns true.
bool DecodeOne(std::string_view text, size_t start, size_t* consumed,
               std::string_view* decoded, char* numeric_storage) {
  const size_t semi = text.find(';', start + 1);
  // Entity names are short; a distant semicolon means a bare ampersand.
  if (semi == std::string_view::npos || semi == start + 1 ||
      semi - start > 10) {
    return false;
  }
  std::string_view body = text.substr(start + 1, semi - start - 1);
  if (body[0] == '#') {
    // Numeric reference.
    int code = 0;
    bool any = false;
    if (body.size() > 1 && (body[1] == 'x' || body[1] == 'X')) {
      for (size_t i = 2; i < body.size(); ++i) {
        const char c = body[i];
        int digit;
        if (IsAsciiDigit(c)) digit = c - '0';
        else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
        else return false;
        code = code * 16 + digit;
        any = true;
        if (code > 0x10FFFF) return false;
      }
    } else {
      for (size_t i = 1; i < body.size(); ++i) {
        if (!IsAsciiDigit(body[i])) return false;
        code = code * 10 + (body[i] - '0');
        any = true;
        if (code > 0x10FFFF) return false;
      }
    }
    if (!any || code == 0) return false;
    *numeric_storage = code < 128 ? static_cast<char>(code) : '?';
    *decoded = {numeric_storage, 1};
    *consumed = semi - start + 1;
    return true;
  }
  const EntityEntry* entry = FindNamedEntity(body);
  if (entry == nullptr) return false;
  *decoded = entry->value;
  *consumed = semi - start + 1;
  return true;
}

}  // namespace

std::string DecodeEntities(std::string_view text) {
  size_t amp = swar::FindByte(text, 0, '&');
  if (amp == text.size()) return std::string(text);  // no references at all
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    out.append(text.substr(i, amp - i));  // bulk copy the plain stretch
    i = amp;
    if (i >= text.size()) break;
    size_t consumed = 0;
    std::string_view decoded;
    char numeric_storage = 0;
    if (DecodeOne(text, i, &consumed, &decoded, &numeric_storage)) {
      out.append(decoded);
      i += consumed;
    } else {
      out.push_back('&');
      ++i;
    }
    amp = swar::FindByte(text, i, '&');
  }
  return out;
}

std::string EncodeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace webrbd
