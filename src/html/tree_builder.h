// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// The paper's Appendix A Tag-Tree Construction algorithm:
//   Step 1  lex the document (html/lexer.h does this pass);
//   Step 2  discard "useless" tags (comments / declarations, and end-tags
//           with no corresponding start-tag) and insert every missing
//           end-tag — an unclosed start-tag's region ends just before the
//           next tag in the document;
//   Step 3  build the tag tree from the now-balanced stream.
//
// The paper rewrites the document text between steps; we rewrite the token
// stream instead, which is equivalent and avoids the copy. The whole
// pipeline is O(n) in document length.
//
// Tag names are interned during Step 2 (one TagSymbol per distinct name),
// and Step 3 bump-allocates every node out of a DocumentArena — either a
// private one (the two-argument overloads) or a caller-supplied one that a
// batch worker reuses, Reset() between documents, across its whole chunk.

#ifndef WEBRBD_HTML_TREE_BUILDER_H_
#define WEBRBD_HTML_TREE_BUILDER_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "html/arena.h"
#include "html/lexer.h"
#include "html/tag_tree.h"
#include "robust/limits.h"
#include "util/result.h"

namespace webrbd {

/// Steps 1+2 only: the lexed, balanced, symbol-interned token stream plus
/// the stable document copy its string_views borrow. The intermediate
/// currency of the split pipeline below — and everything a STREAM-LEVEL
/// consumer needs: the template cache fingerprints pages and re-applies
/// memoized boundaries on this stream alone, skipping Step 3 (node
/// construction, the most expensive phase) for every cache hit of a
/// rule-less ontology.
struct BalancedDocument {
  /// Balanced stream: properly nested, comments/declarations dropped,
  /// missing end tags synthesized (token.synthetic).
  std::vector<HtmlToken> tokens;

  /// symbols[i] is tokens[i]'s interned tag symbol in the arena the stream
  /// was balanced through (kInvalidTagSymbol for text tokens).
  std::vector<TagSymbol> symbols;

  /// The stable copy of the input that every token view points into.
  std::unique_ptr<std::string> document;
};

/// Builds the tag tree of `document`. Never fails on malformed markup (the
/// algorithm is specified to repair it); it fails with kResourceExhausted
/// when the document trips a fatal DocumentLimits cap (size, token count,
/// nesting depth, arena bytes), and with kInternal only on invariant
/// violations.
[[nodiscard]] Result<TagTree> BuildTagTree(std::string_view document,
                                           const robust::DocumentLimits& limits);

/// Convenience overload using the production default limits.
[[nodiscard]] Result<TagTree> BuildTagTree(std::string_view document);

/// Builds into a caller-owned `arena`, which must outlive the returned
/// TagTree. The caller Reset()s the arena between documents (after the
/// previous document's tree is gone) to reuse its blocks and intern table.
/// On failure the arena may hold partial allocations until the next Reset.
[[nodiscard]] Result<TagTree> BuildTagTree(std::string_view document,
                                           const robust::DocumentLimits& limits,
                                           DocumentArena* arena);

/// Steps 1+2 of BuildTagTree as a separate phase: copies `document`, lexes
/// it, and balances the token stream, interning tag names into `arena`'s
/// table. The result feeds either a stream-level consumer or
/// BuildTagTreeFromBalanced; `arena` must be the one later passed there.
/// Fails exactly when the corresponding BuildTagTree prefix would.
[[nodiscard]] Result<BalancedDocument> LexAndBalance(
    std::string_view document, const robust::DocumentLimits& limits,
    DocumentArena& arena);

/// Step 3: builds the tag tree out of an already-balanced stream. `arena`
/// must be the arena `balanced` was produced through (its symbols index
/// that arena's intern table) and must outlive the returned tree. Together
/// with LexAndBalance this is exactly the three-argument BuildTagTree.
[[nodiscard]] Result<TagTree> BuildTagTreeFromBalanced(
    BalancedDocument balanced, const robust::DocumentLimits& limits,
    DocumentArena* arena);

}  // namespace webrbd

#endif  // WEBRBD_HTML_TREE_BUILDER_H_
