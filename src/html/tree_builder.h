// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// The paper's Appendix A Tag-Tree Construction algorithm:
//   Step 1  lex the document (html/lexer.h does this pass);
//   Step 2  discard "useless" tags (comments / declarations, and end-tags
//           with no corresponding start-tag) and insert every missing
//           end-tag — an unclosed start-tag's region ends just before the
//           next tag in the document;
//   Step 3  build the tag tree from the now-balanced stream.
//
// The paper rewrites the document text between steps; we rewrite the token
// stream instead, which is equivalent and avoids the copy. The whole
// pipeline is O(n) in document length.
//
// Tag names are interned during Step 2 (one TagSymbol per distinct name),
// and Step 3 bump-allocates every node out of a DocumentArena — either a
// private one (the two-argument overloads) or a caller-supplied one that a
// batch worker reuses, Reset() between documents, across its whole chunk.

#ifndef WEBRBD_HTML_TREE_BUILDER_H_
#define WEBRBD_HTML_TREE_BUILDER_H_

#include <string_view>

#include "html/arena.h"
#include "html/tag_tree.h"
#include "robust/limits.h"
#include "util/result.h"

namespace webrbd {

/// Builds the tag tree of `document`. Never fails on malformed markup (the
/// algorithm is specified to repair it); it fails with kResourceExhausted
/// when the document trips a fatal DocumentLimits cap (size, token count,
/// nesting depth, arena bytes), and with kInternal only on invariant
/// violations.
[[nodiscard]] Result<TagTree> BuildTagTree(std::string_view document,
                                           const robust::DocumentLimits& limits);

/// Convenience overload using the production default limits.
[[nodiscard]] Result<TagTree> BuildTagTree(std::string_view document);

/// Builds into a caller-owned `arena`, which must outlive the returned
/// TagTree. The caller Reset()s the arena between documents (after the
/// previous document's tree is gone) to reuse its blocks and intern table.
/// On failure the arena may hold partial allocations until the next Reset.
[[nodiscard]] Result<TagTree> BuildTagTree(std::string_view document,
                                           const robust::DocumentLimits& limits,
                                           DocumentArena* arena);

}  // namespace webrbd

#endif  // WEBRBD_HTML_TREE_BUILDER_H_
