// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Token model for the HTML lexer. The paper's tag-tree construction consumes
// a stream of start-tags, end-tags, plain text, and discardable tokens
// (comments, doctypes, processing instructions).
//
// ZERO-COPY LIFETIME CONTRACT: every string_view in an HtmlToken borrows
// either the source document buffer passed to LexHtml or the DocumentArena
// passed alongside it (mixed-case tag/attribute names are lowercased into
// the arena; everything else views the document verbatim). Tokens are valid
// only while BOTH outlive them. TagTree honors this by owning a
// stable-address copy of the document plus the arena; code that must keep
// token-derived text past extraction copies it into a std::string —
// webrbd_lint's arena-escape rule flags violations in src/.

#ifndef WEBRBD_HTML_TOKEN_H_
#define WEBRBD_HTML_TOKEN_H_

#include <string_view>
#include <vector>

namespace webrbd {

/// One parsed tag attribute. Names are lowercased; values are unquoted but
/// otherwise verbatim. Both fields view the source buffer (the name views
/// the arena instead when the source spelling was mixed-case).
struct HtmlAttribute {
  std::string_view name;
  std::string_view value;

  bool operator==(const HtmlAttribute& other) const {
    return name == other.name && value == other.value;
  }
};

/// One lexical token of an HTML document. See the lifetime contract above:
/// name/text/attrs are borrowed views, not owned strings.
struct HtmlToken {
  enum class Kind {
    kStartTag,  ///< <name attr=...>
    kEndTag,    ///< </name>
    kText,      ///< plain text run (entities NOT decoded; offsets matter more)
    kComment,   ///< <!-- ... --> or any <! ...> declaration (doctype included)
    kProcessing ///< <? ... > processing instruction
  };

  Kind kind = Kind::kText;

  /// Lowercased tag name for start/end tags; empty otherwise. Views the
  /// source bytes when they are already lowercase (the overwhelming common
  /// case), or an arena-spilled lowercase copy when they are not.
  std::string_view name;

  /// Attributes of a start tag.
  std::vector<HtmlAttribute> attrs;

  /// Byte range [begin, end) of the token in the source document. Synthetic
  /// tokens (inserted missing end-tags) carry a zero-width range at their
  /// insertion point.
  size_t begin = 0;
  size_t end = 0;

  /// Verbatim text for kText tokens — a view of the source bytes.
  std::string_view text;

  /// True for XML-style self-closing start tags (<br/>).
  bool self_closing = false;

  /// True for end-tags synthesized by the tree builder (the paper's
  /// "inserted missing end-tags").
  bool synthetic = false;

  bool IsTag() const {
    return kind == Kind::kStartTag || kind == Kind::kEndTag;
  }
};

}  // namespace webrbd

#endif  // WEBRBD_HTML_TOKEN_H_
