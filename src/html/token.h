// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Token model for the HTML lexer. The paper's tag-tree construction consumes
// a stream of start-tags, end-tags, plain text, and discardable tokens
// (comments, doctypes, processing instructions).

#ifndef WEBRBD_HTML_TOKEN_H_
#define WEBRBD_HTML_TOKEN_H_

#include <string>
#include <vector>

namespace webrbd {

/// One parsed tag attribute. Names are lowercased; values are unquoted but
/// otherwise verbatim.
struct HtmlAttribute {
  std::string name;
  std::string value;

  bool operator==(const HtmlAttribute& other) const {
    return name == other.name && value == other.value;
  }
};

/// One lexical token of an HTML document.
struct HtmlToken {
  enum class Kind {
    kStartTag,  ///< <name attr=...>
    kEndTag,    ///< </name>
    kText,      ///< plain text run (entities NOT decoded; offsets matter more)
    kComment,   ///< <!-- ... --> or any <! ...> declaration (doctype included)
    kProcessing ///< <? ... > processing instruction
  };

  Kind kind = Kind::kText;

  /// Lowercased tag name for start/end tags; empty otherwise.
  std::string name;

  /// Attributes of a start tag.
  std::vector<HtmlAttribute> attrs;

  /// Byte range [begin, end) of the token in the source document. Synthetic
  /// tokens (inserted missing end-tags) carry a zero-width range at their
  /// insertion point.
  size_t begin = 0;
  size_t end = 0;

  /// Verbatim text for kText tokens.
  std::string text;

  /// True for XML-style self-closing start tags (<br/>).
  bool self_closing = false;

  /// True for end-tags synthesized by the tree builder (the paper's
  /// "inserted missing end-tags").
  bool synthetic = false;

  bool IsTag() const {
    return kind == Kind::kStartTag || kind == Kind::kEndTag;
  }
};

}  // namespace webrbd

#endif  // WEBRBD_HTML_TOKEN_H_
