// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "html/tree_builder.h"

#include <map>
#include <string>

#include "html/lexer.h"
#include "obs/stages.h"
#include "robust/limits.h"

namespace webrbd {

namespace {

// --- Step 2: balance the token stream -------------------------------------

struct OpenTag {
  std::string name;
  size_t token_index;  // index of the start tag in the filtered stream
};

// Answers "first surviving tag at or after index i" in amortized
// near-constant time. skip_[i] starts as the nearest tag at or after i
// (discarded or not); Resolve() hops over tags discarded since then and
// path-compresses the hops, so repeated queries never rescan a stretch of
// discarded tags. Discards are permanent, which keeps the compressed links
// valid: everything strictly between a link's source and target is, and
// stays, discarded. This replaces a forward rescan per unclosed tag that
// made Step 2 O(n^2) on stray-end-tag / unclosed-tag storms.
class SurvivingTagIndex {
 public:
  SurvivingTagIndex(const std::vector<HtmlToken>& tokens,
                    const std::vector<bool>& discard)
      : discard_(discard), skip_(tokens.size() + 1) {
    skip_[tokens.size()] = tokens.size();
    for (size_t i = tokens.size(); i-- > 0;) {
      skip_[i] = tokens[i].IsTag() ? i : skip_[i + 1];
    }
  }

  /// Index of the first non-discarded tag at or after `from`, or
  /// tokens.size() when none remains.
  size_t Resolve(size_t from) {
    path_.clear();
    size_t i = from;
    size_t j = skip_[i];
    while (j < discard_.size() && discard_[j]) {
      path_.push_back(i);
      i = j + 1;
      j = skip_[i];
    }
    for (size_t p : path_) skip_[p] = j;
    return j;
  }

 private:
  const std::vector<bool>& discard_;
  std::vector<size_t> skip_;
  std::vector<size_t> path_;  // reused across queries
};

HtmlToken SyntheticEndTag(const std::vector<HtmlToken>& tokens,
                          const std::string& name, size_t insert_before) {
  HtmlToken token;
  token.kind = HtmlToken::Kind::kEndTag;
  token.name = name;
  token.synthetic = true;
  size_t offset = insert_before < tokens.size() ? tokens[insert_before].begin
                  : tokens.empty()              ? 0
                                   : tokens.back().end;
  token.begin = offset;
  token.end = offset;
  return token;
}

// Implements the paper's Step 2 on the token stream: drops useless tokens
// and inserts missing end tags so that the result is balanced and properly
// nested. An unclosed tag's synthesized end-tag is placed just before the
// next tag after its start-tag, which is exactly the paper's region rule.
//
// Near-linear by construction: matching an end tag consults a per-name
// index of open-stack positions (instead of scanning the whole stack), and
// placing a synthesized end tag consults the path-compressed
// SurvivingTagIndex (instead of rescanning the token stream).
std::vector<HtmlToken> BalanceTokens(std::vector<HtmlToken> raw) {
  // Discard comments / declarations / processing instructions up front
  // (the paper's "useless" <!... tags), and expand self-closing tags.
  std::vector<HtmlToken> tokens;
  tokens.reserve(raw.size());
  for (HtmlToken& token : raw) {
    if (token.kind == HtmlToken::Kind::kComment ||
        token.kind == HtmlToken::Kind::kProcessing) {
      continue;
    }
    if (token.kind == HtmlToken::Kind::kStartTag && token.self_closing) {
      HtmlToken end;
      end.kind = HtmlToken::Kind::kEndTag;
      end.name = token.name;
      end.synthetic = true;
      end.begin = token.end;
      end.end = token.end;
      token.self_closing = false;
      tokens.push_back(std::move(token));
      tokens.push_back(std::move(end));
      continue;
    }
    tokens.push_back(std::move(token));
  }

  std::vector<OpenTag> stack;
  // Stack positions of each currently-open tag name, in increasing order;
  // back() is the innermost open tag of that name.
  std::map<std::string, std::vector<size_t>, std::less<>> open_by_name;
  // insert_before token index -> synthesized end tags (in close order).
  std::map<size_t, std::vector<HtmlToken>> insertions;
  std::vector<bool> discard(tokens.size(), false);
  SurvivingTagIndex surviving(tokens, discard);

  auto close_unmatched = [&](const OpenTag& open) {
    size_t at = surviving.Resolve(open.token_index + 1);
    insertions[at].push_back(SyntheticEndTag(tokens, open.name, at));
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const HtmlToken& token = tokens[i];
    if (token.kind == HtmlToken::Kind::kStartTag) {
      open_by_name[token.name].push_back(stack.size());
      stack.push_back(OpenTag{token.name, i});
    } else if (token.kind == HtmlToken::Kind::kEndTag) {
      // Innermost open tag of the same name, if any.
      auto match_it = open_by_name.find(token.name);
      if (match_it == open_by_name.end()) {
        discard[i] = true;  // end tag with no corresponding start: useless
        continue;
      }
      size_t match = match_it->second.back();
      // Pop everything above the match (synthesizing their end tags,
      // innermost first) plus the match itself, unindexing each popped
      // entry: the entry being popped is always the innermost — and thus
      // the last-indexed — occurrence of its name.
      for (size_t s = stack.size(); s-- > match;) {
        auto it = open_by_name.find(stack[s].name);
        it->second.pop_back();
        if (it->second.empty()) open_by_name.erase(it);
        if (s > match) close_unmatched(stack[s]);
      }
      stack.resize(match);
    }
  }
  // Tags still open at end of input.
  for (size_t s = stack.size(); s-- > 0;) {
    close_unmatched(stack[s]);
  }

  // Merge: emit synthesized ends scheduled before each index, then the
  // surviving original token.
  std::vector<HtmlToken> balanced;
  balanced.reserve(tokens.size() + insertions.size());
  for (size_t i = 0; i <= tokens.size(); ++i) {
    auto it = insertions.find(i);
    if (it != insertions.end()) {
      for (HtmlToken& end : it->second) balanced.push_back(std::move(end));
    }
    if (i < tokens.size() && !discard[i]) {
      balanced.push_back(std::move(tokens[i]));
    }
  }
  return balanced;
}

// --- Step 3: build the tree from the balanced stream ----------------------

Result<std::unique_ptr<TagNode>> BuildFromBalanced(
    const std::vector<HtmlToken>& tokens, size_t document_size,
    const robust::DocumentLimits& limits) {
  auto root = std::make_unique<TagNode>();
  root->name = "#document";
  root->region_begin = 0;
  root->region_end = document_size;
  root->token_begin = 0;
  root->token_end = tokens.empty() ? 0 : tokens.size() - 1;

  std::vector<TagNode*> stack = {root.get()};
  TagNode* last_closed = nullptr;

  for (size_t i = 0; i < tokens.size(); ++i) {
    const HtmlToken& token = tokens[i];
    switch (token.kind) {
      case HtmlToken::Kind::kStartTag: {
        // stack holds the super-root plus every open element, so its size
        // equals the nesting depth the new element would land at.
        if (robust::LimitExceeded(stack.size(), limits.max_tree_depth)) {
          obs::Robust().trip_depth->Increment();
          return Status::ResourceExhausted(
              "tag nesting exceeds max_tree_depth " +
              std::to_string(limits.max_tree_depth));
        }
        auto node = std::make_unique<TagNode>();
        node->name = token.name;
        node->attrs = token.attrs;
        node->region_begin = token.begin;
        node->token_begin = i;
        node->parent = stack.back();
        TagNode* raw = node.get();
        stack.back()->children.push_back(std::move(node));
        stack.push_back(raw);
        last_closed = nullptr;
        break;
      }
      case HtmlToken::Kind::kEndTag: {
        if (stack.size() < 2 || stack.back()->name != token.name) {
          return Status::Internal(
              "tree builder: balanced stream violated nesting at token " +
              std::to_string(i) + " </" + token.name + ">");
        }
        TagNode* node = stack.back();
        stack.pop_back();
        node->region_end = token.end;
        node->token_end = i;
        node->end_tag_synthesized = token.synthetic;
        last_closed = node;
        break;
      }
      case HtmlToken::Kind::kText: {
        // "I": text between a start tag and the next tag goes to the node
        // just opened; "O": text after an end tag goes to the node just
        // closed.
        if (last_closed != nullptr) {
          last_closed->tail_text += token.text;
        } else if (stack.back()->children.empty()) {
          stack.back()->inner_text += token.text;
        } else {
          // Text between siblings with no intervening close (defensive;
          // unreachable with a balanced stream).
          stack.back()->children.back()->tail_text += token.text;
        }
        break;
      }
      case HtmlToken::Kind::kComment:
      case HtmlToken::Kind::kProcessing:
        return Status::Internal("tree builder: comment survived balancing");
    }
  }
  if (stack.size() != 1) {
    return Status::Internal("tree builder: unclosed nodes after balancing");
  }
  return root;
}

}  // namespace

Result<TagTree> BuildTagTree(std::string_view document,
                             const robust::DocumentLimits& limits) {
  auto lexed = LexHtml(document, limits);  // records the lex stage span
  if (!lexed.ok()) return lexed.status();
  obs::ScopedTimer timer(obs::Stages().tree_build);
  std::vector<HtmlToken> balanced = BalanceTokens(std::move(lexed).value());
  auto root = BuildFromBalanced(balanced, document.size(), limits);
  if (!root.ok()) return root.status();
  return TagTree(std::move(root).value(), std::move(balanced),
                 std::string(document));
}

Result<TagTree> BuildTagTree(std::string_view document) {
  return BuildTagTree(document, robust::DocumentLimits::Production());
}

}  // namespace webrbd
