// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "html/tree_builder.h"

#include <map>
#include <string>

#include "html/lexer.h"
#include "obs/stages.h"

namespace webrbd {

namespace {

// --- Step 2: balance the token stream -------------------------------------

struct OpenTag {
  std::string name;
  size_t token_index;  // index of the start tag in the filtered stream
};

// Index of the first surviving tag token after `index`, or tokens.size().
// Useless (discarded) tags do not count: the paper eliminates them in the
// same pass, so regions extend past them.
size_t NextTagIndex(const std::vector<HtmlToken>& tokens,
                    const std::vector<bool>& discard, size_t index) {
  for (size_t i = index + 1; i < tokens.size(); ++i) {
    if (tokens[i].IsTag() && !discard[i]) return i;
  }
  return tokens.size();
}

HtmlToken SyntheticEndTag(const std::vector<HtmlToken>& tokens,
                          const std::string& name, size_t insert_before) {
  HtmlToken token;
  token.kind = HtmlToken::Kind::kEndTag;
  token.name = name;
  token.synthetic = true;
  size_t offset = insert_before < tokens.size() ? tokens[insert_before].begin
                  : tokens.empty()              ? 0
                                   : tokens.back().end;
  token.begin = offset;
  token.end = offset;
  return token;
}

// Implements the paper's Step 2 on the token stream: drops useless tokens
// and inserts missing end tags so that the result is balanced and properly
// nested. An unclosed tag's synthesized end-tag is placed just before the
// next tag after its start-tag, which is exactly the paper's region rule.
std::vector<HtmlToken> BalanceTokens(std::vector<HtmlToken> raw) {
  // Discard comments / declarations / processing instructions up front
  // (the paper's "useless" <!... tags), and expand self-closing tags.
  std::vector<HtmlToken> tokens;
  tokens.reserve(raw.size());
  for (HtmlToken& token : raw) {
    if (token.kind == HtmlToken::Kind::kComment ||
        token.kind == HtmlToken::Kind::kProcessing) {
      continue;
    }
    if (token.kind == HtmlToken::Kind::kStartTag && token.self_closing) {
      HtmlToken end;
      end.kind = HtmlToken::Kind::kEndTag;
      end.name = token.name;
      end.synthetic = true;
      end.begin = token.end;
      end.end = token.end;
      token.self_closing = false;
      tokens.push_back(std::move(token));
      tokens.push_back(std::move(end));
      continue;
    }
    tokens.push_back(std::move(token));
  }

  std::vector<OpenTag> stack;
  // insert_before token index -> synthesized end tags (in close order).
  std::map<size_t, std::vector<HtmlToken>> insertions;
  std::vector<bool> discard(tokens.size(), false);

  auto close_unmatched = [&](const OpenTag& open) {
    size_t at = NextTagIndex(tokens, discard, open.token_index);
    insertions[at].push_back(SyntheticEndTag(tokens, open.name, at));
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const HtmlToken& token = tokens[i];
    if (token.kind == HtmlToken::Kind::kStartTag) {
      stack.push_back(OpenTag{token.name, i});
    } else if (token.kind == HtmlToken::Kind::kEndTag) {
      // Find the matching start tag on the stack.
      int match = -1;
      for (int s = static_cast<int>(stack.size()) - 1; s >= 0; --s) {
        if (stack[s].name == token.name) {
          match = s;
          break;
        }
      }
      if (match < 0) {
        discard[i] = true;  // end tag with no corresponding start: useless
        continue;
      }
      // Pop everything above the match, synthesizing their end tags.
      for (int s = static_cast<int>(stack.size()) - 1; s > match; --s) {
        close_unmatched(stack[s]);
      }
      stack.resize(static_cast<size_t>(match));
    }
  }
  // Tags still open at end of input.
  for (int s = static_cast<int>(stack.size()) - 1; s >= 0; --s) {
    close_unmatched(stack[s]);
  }

  // Merge: emit synthesized ends scheduled before each index, then the
  // surviving original token.
  std::vector<HtmlToken> balanced;
  balanced.reserve(tokens.size() + insertions.size());
  for (size_t i = 0; i <= tokens.size(); ++i) {
    auto it = insertions.find(i);
    if (it != insertions.end()) {
      for (HtmlToken& end : it->second) balanced.push_back(std::move(end));
    }
    if (i < tokens.size() && !discard[i]) {
      balanced.push_back(std::move(tokens[i]));
    }
  }
  return balanced;
}

// --- Step 3: build the tree from the balanced stream ----------------------

Result<std::unique_ptr<TagNode>> BuildFromBalanced(
    const std::vector<HtmlToken>& tokens, size_t document_size) {
  auto root = std::make_unique<TagNode>();
  root->name = "#document";
  root->region_begin = 0;
  root->region_end = document_size;
  root->token_begin = 0;
  root->token_end = tokens.empty() ? 0 : tokens.size() - 1;

  std::vector<TagNode*> stack = {root.get()};
  TagNode* last_closed = nullptr;

  for (size_t i = 0; i < tokens.size(); ++i) {
    const HtmlToken& token = tokens[i];
    switch (token.kind) {
      case HtmlToken::Kind::kStartTag: {
        auto node = std::make_unique<TagNode>();
        node->name = token.name;
        node->attrs = token.attrs;
        node->region_begin = token.begin;
        node->token_begin = i;
        node->parent = stack.back();
        TagNode* raw = node.get();
        stack.back()->children.push_back(std::move(node));
        stack.push_back(raw);
        last_closed = nullptr;
        break;
      }
      case HtmlToken::Kind::kEndTag: {
        if (stack.size() < 2 || stack.back()->name != token.name) {
          return Status::Internal(
              "tree builder: balanced stream violated nesting at token " +
              std::to_string(i) + " </" + token.name + ">");
        }
        TagNode* node = stack.back();
        stack.pop_back();
        node->region_end = token.end;
        node->token_end = i;
        node->end_tag_synthesized = token.synthetic;
        last_closed = node;
        break;
      }
      case HtmlToken::Kind::kText: {
        // "I": text between a start tag and the next tag goes to the node
        // just opened; "O": text after an end tag goes to the node just
        // closed.
        if (last_closed != nullptr) {
          last_closed->tail_text += token.text;
        } else if (stack.back()->children.empty()) {
          stack.back()->inner_text += token.text;
        } else {
          // Text between siblings with no intervening close (defensive;
          // unreachable with a balanced stream).
          stack.back()->children.back()->tail_text += token.text;
        }
        break;
      }
      case HtmlToken::Kind::kComment:
      case HtmlToken::Kind::kProcessing:
        return Status::Internal("tree builder: comment survived balancing");
    }
  }
  if (stack.size() != 1) {
    return Status::Internal("tree builder: unclosed nodes after balancing");
  }
  return root;
}

}  // namespace

Result<TagTree> BuildTagTree(std::string_view document) {
  auto lexed = LexHtml(document);  // records the lex stage span itself
  if (!lexed.ok()) return lexed.status();
  obs::ScopedTimer timer(obs::Stages().tree_build);
  std::vector<HtmlToken> balanced = BalanceTokens(std::move(lexed).value());
  auto root = BuildFromBalanced(balanced, document.size());
  if (!root.ok()) return root.status();
  return TagTree(std::move(root).value(), std::move(balanced),
                 std::string(document));
}

}  // namespace webrbd
