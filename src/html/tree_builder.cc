// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "html/tree_builder.h"

#include <algorithm>
#include <array>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "html/lexer.h"
#include "obs/stages.h"
#include "robust/limits.h"

namespace webrbd {

namespace {

// --- Step 2: balance the token stream -------------------------------------

// The balanced stream plus the interned symbol of each token (text tokens
// carry kInvalidTagSymbol). Interning happens here, in the same pass that
// filters the raw stream, so Step 3 and every downstream heuristic compare
// integers instead of name strings.
struct BalancedStream {
  std::vector<HtmlToken> tokens;
  std::vector<TagSymbol> symbols;
};

struct OpenTag {
  TagSymbol symbol = kInvalidTagSymbol;
  size_t token_index = 0;  // index of the start tag in the filtered stream
};

// Answers "first surviving tag at or after index i" in amortized
// near-constant time. skip_[i] starts as the nearest tag at or after i
// (discarded or not); Resolve() hops over tags discarded since then and
// path-compresses the hops, so repeated queries never rescan a stretch of
// discarded tags. Discards are permanent, which keeps the compressed links
// valid: everything strictly between a link's source and target is, and
// stays, discarded. This replaces a forward rescan per unclosed tag that
// made Step 2 O(n^2) on stray-end-tag / unclosed-tag storms.
class SurvivingTagIndex {
 public:
  SurvivingTagIndex(const std::vector<HtmlToken>& tokens,
                    const std::vector<bool>& discard)
      : discard_(discard), skip_(tokens.size() + 1) {
    skip_[tokens.size()] = tokens.size();
    for (size_t i = tokens.size(); i-- > 0;) {
      skip_[i] = tokens[i].IsTag() ? i : skip_[i + 1];
    }
  }

  /// Index of the first non-discarded tag at or after `from`, or
  /// tokens.size() when none remains.
  size_t Resolve(size_t from) {
    path_.clear();
    size_t i = from;
    size_t j = skip_[i];
    while (j < discard_.size() && discard_[j]) {
      path_.push_back(i);
      i = j + 1;
      j = skip_[i];
    }
    for (size_t p : path_) skip_[p] = j;
    return j;
  }

 private:
  const std::vector<bool>& discard_;
  std::vector<size_t> skip_;
  std::vector<size_t> path_;  // reused across queries
};

HtmlToken SyntheticEndTag(const std::vector<HtmlToken>& tokens,
                          std::string_view name, size_t insert_before) {
  HtmlToken token;
  token.kind = HtmlToken::Kind::kEndTag;
  token.name = name;
  token.synthetic = true;
  size_t offset = insert_before < tokens.size() ? tokens[insert_before].begin
                  : tokens.empty()              ? 0
                                   : tokens.back().end;
  token.begin = offset;
  token.end = offset;
  return token;
}

Status InternOverflow() {
  obs::Robust().trip_arena_bytes->Increment();
  return Status::ResourceExhausted(
      "tag-name intern table overflow (more than 65534 distinct tag names)");
}

// Interner pool bytes count against the ARENA byte budget: the pool is
// monotonic and survives DocumentArena::Reset() by design (warm symbols
// across a batch chunk), which also means a corpus of documents with
// all-distinct tag names grows it for the life of the worker. Charging it
// to max_arena_bytes turns that unbounded growth into an ordinary
// per-document kResourceExhausted degradation.
Status ArenaBudgetExceeded(const robust::DocumentLimits& limits) {
  obs::Robust().trip_arena_bytes->Increment();
  return Status::ResourceExhausted(
      "tag tree + tag-name intern table exceed max_arena_bytes " +
      std::to_string(limits.max_arena_bytes));
}

// Implements the paper's Step 2 on the token stream: drops useless tokens
// and inserts missing end tags so that the result is balanced and properly
// nested. An unclosed tag's synthesized end-tag is placed just before the
// next tag after its start-tag, which is exactly the paper's region rule.
//
// Near-linear by construction: matching an end tag consults a per-symbol
// index of open-stack positions (instead of scanning the whole stack), and
// placing a synthesized end tag consults the path-compressed
// SurvivingTagIndex (instead of rescanning the token stream).
Result<BalancedStream> BalanceTokens(std::vector<HtmlToken> raw,
                                     DocumentArena& arena,
                                     const robust::DocumentLimits& limits) {
  TagNameInterner& interner = arena.interner();
  // Direct-mapped memo in front of the interner's hash map: a
  // markup-dense page interns the same handful of names hundreds of
  // times, and the per-call map lookup is the single largest cost of this
  // whole pass. Keyed by (first byte, length) — a collision or a cold
  // name just falls through to the real Intern, so the memo can only
  // return symbols the interner itself produced.
  struct InternMemoEntry {
    std::string_view name;
    TagSymbol symbol = kInvalidTagSymbol;
  };
  std::array<InternMemoEntry, 32> intern_memo;

  // Discard comments / declarations / processing instructions up front
  // (the paper's "useless" <!... tags), expand self-closing tags, and
  // intern every surviving tag name. The merge below may append a few
  // synthesized end tags; the extra headroom lets the in-place path run
  // without a mid-stream reallocation on typical markup.
  std::vector<HtmlToken> tokens;
  std::vector<TagSymbol> symbols;
  const size_t headroom = raw.size() + raw.size() / 16 + 8;
  tokens.reserve(headroom);
  symbols.reserve(headroom);
  for (HtmlToken& token : raw) {
    if (token.kind == HtmlToken::Kind::kComment ||
        token.kind == HtmlToken::Kind::kProcessing) {
      continue;
    }
    TagSymbol symbol = kInvalidTagSymbol;
    if (token.IsTag()) {
      // First byte, last byte, and length — enough to spread the markup
      // vocabulary (notably td/tt/tr, which share first byte and length).
      const size_t first = static_cast<unsigned char>(
          token.name.empty() ? 0 : token.name.front());
      const size_t last = static_cast<unsigned char>(
          token.name.empty() ? 0 : token.name.back());
      const size_t slot =
          (first * 31 + last * 7 + token.name.size()) % intern_memo.size();
      InternMemoEntry& memo = intern_memo[slot];
      if (memo.name == token.name) {
        symbol = memo.symbol;
      } else {
        const size_t names_before = interner.size();
        symbol = interner.Intern(token.name);
        if (symbol == kInvalidTagSymbol) return InternOverflow();
        if (interner.size() != names_before &&
            robust::LimitExceeded(
                arena.bytes_in_use() + interner.storage_bytes(),
                limits.max_arena_bytes)) {
          return ArenaBudgetExceeded(limits);
        }
        memo = {token.name, symbol};
      }
    }
    if (token.kind == HtmlToken::Kind::kStartTag && token.self_closing) {
      HtmlToken end;
      end.kind = HtmlToken::Kind::kEndTag;
      end.name = token.name;
      end.synthetic = true;
      end.begin = token.end;
      end.end = token.end;
      token.self_closing = false;
      tokens.push_back(std::move(token));
      symbols.push_back(symbol);
      tokens.push_back(std::move(end));
      symbols.push_back(symbol);
      continue;
    }
    tokens.push_back(std::move(token));
    symbols.push_back(symbol);
  }

  std::vector<OpenTag> stack;
  // Stack positions of each currently-open tag symbol, in increasing
  // order; back() is the innermost open tag of that symbol. Indexed by
  // symbol — the intern table keeps these ids dense.
  std::vector<std::vector<size_t>> open_by_symbol;
  // (insert_before token index, synthesized end tag) pairs, collected in
  // close order and stable-sorted by index before the merge — same-index
  // ends keep their close order.
  struct PendingEnd {
    HtmlToken token;
    TagSymbol symbol;
  };
  std::vector<std::pair<size_t, PendingEnd>> insertions;
  std::vector<bool> discard(tokens.size(), false);
  size_t discarded = 0;
  // Built lazily: an unclosed tag's end usually lands a token or two past
  // its start (void <hr>/<br> markup), found by a short forward scan. The
  // path-compressed index is only materialized when a scan would
  // degenerate — long discarded stretches from stray-end-tag storms.
  std::optional<SurvivingTagIndex> surviving;

  auto resolve_surviving = [&](size_t from) {
    const size_t scan_limit = std::min(tokens.size(), from + 64);
    for (size_t j = from; j < scan_limit; ++j) {
      if (tokens[j].IsTag() && !discard[j]) return j;
    }
    if (scan_limit == tokens.size()) return tokens.size();
    if (!surviving.has_value()) surviving.emplace(tokens, discard);
    return surviving->Resolve(from);
  };

  auto close_unmatched = [&](const OpenTag& open) {
    size_t at = resolve_surviving(open.token_index + 1);
    insertions.emplace_back(
        at, PendingEnd{
                SyntheticEndTag(tokens, tokens[open.token_index].name, at),
                open.symbol});
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const HtmlToken& token = tokens[i];
    if (token.kind == HtmlToken::Kind::kStartTag) {
      const TagSymbol symbol = symbols[i];
      if (symbol >= open_by_symbol.size()) open_by_symbol.resize(symbol + 1);
      open_by_symbol[symbol].push_back(stack.size());
      stack.push_back(OpenTag{symbol, i});
    } else if (token.kind == HtmlToken::Kind::kEndTag) {
      // Innermost open tag of the same symbol, if any.
      const TagSymbol symbol = symbols[i];
      if (symbol >= open_by_symbol.size() || open_by_symbol[symbol].empty()) {
        discard[i] = true;  // end tag with no corresponding start: useless
        ++discarded;
        continue;
      }
      size_t match = open_by_symbol[symbol].back();
      // Pop everything above the match (synthesizing their end tags,
      // innermost first) plus the match itself, unindexing each popped
      // entry: the entry being popped is always the innermost — and thus
      // the last-indexed — occurrence of its symbol.
      for (size_t s = stack.size(); s-- > match;) {
        open_by_symbol[stack[s].symbol].pop_back();
        if (s > match) close_unmatched(stack[s]);
      }
      stack.resize(match);
    }
  }
  // Tags still open at end of input.
  for (size_t s = stack.size(); s-- > 0;) {
    close_unmatched(stack[s]);
  }

  // Already balanced (nothing discarded, nothing synthesized): the
  // filtered stream IS the result — no merge pass, no re-copy.
  if (insertions.empty() && discarded == 0) {
    return BalancedStream{std::move(tokens), std::move(symbols)};
  }

  // Merge: emit synthesized ends scheduled before each index, then the
  // surviving original token. Two sorted streams, one pointer walk.
  std::stable_sort(
      insertions.begin(), insertions.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; });

  // Nothing discarded and room reserved: merge IN PLACE, shifting the
  // tail backward past each insertion point instead of re-copying the
  // whole stream into fresh vectors. Writing back-to-front keeps every
  // unread original ahead of the write cursor, and same-index insertions
  // — ascending in the sorted vector — are emitted in order by walking
  // them from the back.
  if (discarded == 0 &&
      tokens.capacity() >= tokens.size() + insertions.size()) {
    const size_t original = tokens.size();
    tokens.resize(original + insertions.size());
    symbols.resize(original + insertions.size());
    size_t write = tokens.size();
    size_t pending = insertions.size();
    for (size_t i = original;; --i) {
      while (pending > 0 && insertions[pending - 1].first == i) {
        --pending;
        --write;
        tokens[write] = std::move(insertions[pending].second.token);
        symbols[write] = insertions[pending].second.symbol;
      }
      if (i == 0) break;
      --write;
      if (write != i - 1) {
        tokens[write] = std::move(tokens[i - 1]);
        symbols[write] = symbols[i - 1];
      }
    }
    return BalancedStream{std::move(tokens), std::move(symbols)};
  }

  BalancedStream balanced;
  balanced.tokens.reserve(tokens.size() + insertions.size());
  balanced.symbols.reserve(tokens.size() + insertions.size());
  size_t next_insertion = 0;
  for (size_t i = 0; i <= tokens.size(); ++i) {
    while (next_insertion < insertions.size() &&
           insertions[next_insertion].first == i) {
      PendingEnd& end = insertions[next_insertion].second;
      balanced.tokens.push_back(std::move(end.token));
      balanced.symbols.push_back(end.symbol);
      ++next_insertion;
    }
    if (i < tokens.size() && !discard[i]) {
      balanced.tokens.push_back(std::move(tokens[i]));
      balanced.symbols.push_back(symbols[i]);
    }
  }
  return balanced;
}

// --- Step 3: build the tree from the balanced stream ----------------------

// Appends one text token's bytes to a node text field. The first run is a
// zero-copy view into the token's own storage (owned by the TagTree); a
// second run — possible when a comment was discarded between two text
// tokens — coalesces into the arena.
void AppendText(std::string_view* field, std::string_view piece,
                DocumentArena& arena) {
  *field = field->empty() ? piece : arena.Concat(*field, piece);
}

Result<TagNode*> BuildFromBalanced(DocumentArena& arena,
                                   const BalancedStream& stream,
                                   size_t document_size,
                                   const robust::DocumentLimits& limits) {
  const std::vector<HtmlToken>& tokens = stream.tokens;
  const TagSymbol root_symbol = arena.interner().Intern("#document");
  if (root_symbol == kInvalidTagSymbol) return InternOverflow();

  TagNode* root = arena.New<TagNode>();
  root->name = arena.interner().NameOf(root_symbol);
  root->symbol = root_symbol;
  root->region_begin = 0;
  root->region_end = document_size;
  root->token_begin = 0;
  root->token_end = tokens.empty() ? 0 : tokens.size() - 1;

  // Open-element stack. `child_mark` is each frame's watermark into the
  // shared `pending_children` scratch: closed nodes await adoption there,
  // and when their parent closes, its children sit contiguously at
  // [child_mark, end) — copied to the arena as one span.
  struct OpenFrame {
    TagNode* node;
    size_t child_mark;
  };
  std::vector<OpenFrame> stack = {{root, 0}};
  std::vector<TagNode*> pending_children;
  TagNode* last_closed = nullptr;

  for (size_t i = 0; i < tokens.size(); ++i) {
    const HtmlToken& token = tokens[i];
    switch (token.kind) {
      case HtmlToken::Kind::kStartTag: {
        // stack holds the super-root plus every open element, so its size
        // equals the nesting depth the new element would land at.
        if (robust::LimitExceeded(stack.size(), limits.max_tree_depth)) {
          obs::Robust().trip_depth->Increment();
          return Status::ResourceExhausted(
              "tag nesting exceeds max_tree_depth " +
              std::to_string(limits.max_tree_depth));
        }
        if (robust::LimitExceeded(
                arena.bytes_in_use() + arena.interner().storage_bytes(),
                limits.max_arena_bytes)) {
          return ArenaBudgetExceeded(limits);
        }
        TagNode* node = arena.New<TagNode>();
        node->symbol = stream.symbols[i];
        node->name = arena.interner().NameOf(node->symbol);
        node->attrs = {token.attrs.data(), token.attrs.size()};
        node->region_begin = token.begin;
        node->token_begin = i;
        node->parent = stack.back().node;
        stack.push_back(OpenFrame{node, pending_children.size()});
        last_closed = nullptr;
        break;
      }
      case HtmlToken::Kind::kEndTag: {
        if (stack.size() < 2 ||
            stack.back().node->symbol != stream.symbols[i]) {
          return Status::Internal(
              "tree builder: balanced stream violated nesting at token " +
              std::to_string(i) + " </" + std::string(token.name) + ">");
        }
        OpenFrame frame = stack.back();
        stack.pop_back();
        TagNode* node = frame.node;
        node->region_end = token.end;
        node->token_end = i;
        node->end_tag_synthesized = token.synthetic;
        node->children =
            arena.CopyArray(pending_children.data() + frame.child_mark,
                            pending_children.size() - frame.child_mark);
        pending_children.resize(frame.child_mark);
        pending_children.push_back(node);
        last_closed = node;
        break;
      }
      case HtmlToken::Kind::kText: {
        // "I": text between a start tag and the next tag goes to the node
        // just opened; "O": text after an end tag goes to the node just
        // closed.
        if (last_closed != nullptr) {
          AppendText(&last_closed->tail_text, token.text, arena);
        } else if (pending_children.size() == stack.back().child_mark) {
          AppendText(&stack.back().node->inner_text, token.text, arena);
        } else {
          // Text between siblings with no intervening close (defensive;
          // unreachable with a balanced stream).
          AppendText(&pending_children.back()->tail_text, token.text, arena);
        }
        break;
      }
      case HtmlToken::Kind::kComment:
      case HtmlToken::Kind::kProcessing:
        return Status::Internal("tree builder: comment survived balancing");
    }
  }
  if (stack.size() != 1) {
    return Status::Internal("tree builder: unclosed nodes after balancing");
  }
  root->children =
      arena.CopyArray(pending_children.data(), pending_children.size());
  // Final budget check: child-span copies and text spans land at CLOSE
  // time, after the last per-start-tag check, so a document can finish
  // over budget without ever tripping mid-build.
  if (robust::LimitExceeded(
          arena.bytes_in_use() + arena.interner().storage_bytes(),
          limits.max_arena_bytes)) {
    return ArenaBudgetExceeded(limits);
  }
  return root;
}

// Step 3 behind an ArenaHandle: shared by the public from-balanced entry
// point and the all-in-one builders. Both tree_build spans (Step 2 in
// LexAndBalance, Step 3 here) land in the same stage histogram.
Result<TagTree> FromBalancedWithHandle(BalancedDocument balanced,
                                       const robust::DocumentLimits& limits,
                                       ArenaHandle arena) {
  DocumentArena& a = *arena.get();
  obs::ScopedTimer timer(obs::Stages().tree_build);
  const size_t document_size = balanced.document->size();
  BalancedStream stream{std::move(balanced.tokens),
                        std::move(balanced.symbols)};
  auto root = BuildFromBalanced(a, stream, document_size, limits);
  if (!root.ok()) return root.status();
  obs::Html().arena_bytes->Set(static_cast<double>(a.bytes_in_use()));
  obs::Html().intern_table_size->Set(
      static_cast<double>(a.interner().size()));
  return TagTree(std::move(arena), *root, std::move(stream.tokens),
                 std::move(stream.symbols), std::move(balanced.document));
}

Result<TagTree> BuildWithArena(std::string_view document,
                               const robust::DocumentLimits& limits,
                               ArenaHandle arena) {
  auto balanced = LexAndBalance(document, limits, *arena.get());
  if (!balanced.ok()) return balanced.status();
  return FromBalancedWithHandle(std::move(balanced).value(), limits,
                                std::move(arena));
}

}  // namespace

Result<BalancedDocument> LexAndBalance(std::string_view document,
                                       const robust::DocumentLimits& limits,
                                       DocumentArena& arena) {
  // The zero-copy lexer borrows the buffer it lexes (html/lexer.h), so the
  // stream's stable document copy is made FIRST and that copy is what gets
  // lexed — behind a unique_ptr, whose heap address survives moves of the
  // BalancedDocument (and of any TagTree later built from it).
  auto doc = std::make_unique<std::string>(document);
  auto lexed = LexHtml(*doc, limits, arena);  // records the lex stage span
  if (!lexed.ok()) return lexed.status();
  obs::ScopedTimer timer(obs::Stages().tree_build);
  auto balanced = BalanceTokens(std::move(lexed).value(), arena, limits);
  if (!balanced.ok()) return balanced.status();
  return BalancedDocument{std::move(balanced->tokens),
                          std::move(balanced->symbols), std::move(doc)};
}

Result<TagTree> BuildTagTreeFromBalanced(BalancedDocument balanced,
                                         const robust::DocumentLimits& limits,
                                         DocumentArena* arena) {
  return FromBalancedWithHandle(std::move(balanced), limits,
                                ArenaHandle(arena));
}

Result<TagTree> BuildTagTree(std::string_view document,
                             const robust::DocumentLimits& limits) {
  return BuildWithArena(document, limits,
                        ArenaHandle(std::make_unique<DocumentArena>()));
}

Result<TagTree> BuildTagTree(std::string_view document) {
  return BuildTagTree(document, robust::DocumentLimits::Production());
}

Result<TagTree> BuildTagTree(std::string_view document,
                             const robust::DocumentLimits& limits,
                             DocumentArena* arena) {
  return BuildWithArena(document, limits, ArenaHandle(arena));
}

}  // namespace webrbd
