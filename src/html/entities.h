// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// HTML character-entity decoding for extracted record text. The lexer
// keeps raw bytes (offsets matter for the heuristics); decoding happens
// when text leaves the structural pipeline — record cleaning and
// constant/keyword recognition.

#ifndef WEBRBD_HTML_ENTITIES_H_
#define WEBRBD_HTML_ENTITIES_H_

#include <string>
#include <string_view>

namespace webrbd {

/// Decodes HTML character references:
///   - the named entities common in 1990s documents (&amp; &lt; &gt;
///     &quot; &apos; &nbsp; &copy; &reg; &trade; &mdash; &ndash; &hellip;
///     and the Latin-1 accents &eacute; etc., mapped to ASCII fallbacks);
///   - numeric references &#NN; and &#xHH; (ASCII range decoded directly;
///     non-ASCII mapped to '?').
/// Unknown or malformed references are left verbatim — 1998 pages are full
/// of bare ampersands.
std::string DecodeEntities(std::string_view text);

/// Encodes the five XML-significant characters (& < > " ') as entities;
/// used when round-tripping generated documents.
std::string EncodeEntities(std::string_view text);

}  // namespace webrbd

#endif  // WEBRBD_HTML_ENTITIES_H_
