// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// The paper's "tag tree": a tree of nested tag regions (Section 3). A node
// identifies a region of the document; a region starts at a start-tag and
// ends at its end-tag, or — when the end-tag is missing — just before the
// next tag. Nodes carry the plain text immediately inside the region (the
// paper's "I") and immediately after it ("O").

#ifndef WEBRBD_HTML_TAG_TREE_H_
#define WEBRBD_HTML_TAG_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "html/token.h"

namespace webrbd {

/// One region node of a tag tree.
struct TagNode {
  /// Lowercased tag name. The synthetic super-root is named "#document".
  std::string name;

  /// Attributes of the start tag.
  std::vector<HtmlAttribute> attrs;

  /// Byte range [region_begin, region_end) of the region in the document,
  /// from the start of the opening tag through the end of the closing tag.
  size_t region_begin = 0;
  size_t region_end = 0;

  /// Plain text between the start-tag and the next tag ("I" in Appendix A).
  std::string inner_text;

  /// Plain text between the end-tag and the next tag ("O" in Appendix A).
  std::string tail_text;

  /// True when the end tag was inserted by the builder (paper: "missing").
  bool end_tag_synthesized = false;

  /// Index range [token_begin, token_end] into TagTree::tokens() covering
  /// this node's start tag through its end tag, inclusive.
  size_t token_begin = 0;
  size_t token_end = 0;

  TagNode* parent = nullptr;
  std::vector<std::unique_ptr<TagNode>> children;

  TagNode() = default;
  TagNode(TagNode&&) = default;
  TagNode& operator=(TagNode&&) = default;

  /// Destroys the subtree iteratively (explicit worklist). The default
  /// destructor would recurse once per nesting level through the children
  /// unique_ptrs and overflow the stack on deep-nesting bombs long before
  /// any DocumentLimits cap could trip.
  ~TagNode();

  /// Number of immediate children — the paper's "fan-out".
  size_t fanout() const { return children.size(); }
};

/// An immutable tag tree plus the (rewritten, balanced) token stream it was
/// built from. The heuristics in src/core walk the token stream restricted
/// to a node's token span, which preserves the flat tag/text order the
/// paper's interval and adjacency computations need.
class TagTree {
 public:
  TagTree(std::unique_ptr<TagNode> root, std::vector<HtmlToken> tokens,
          std::string document)
      : root_(std::move(root)),
        tokens_(std::move(tokens)),
        document_(std::move(document)) {}

  TagTree(TagTree&&) = default;
  TagTree& operator=(TagTree&&) = default;

  /// The synthetic "#document" super-root. Real top-level elements (usually
  /// a single <html>) are its children.
  const TagNode& root() const { return *root_; }

  /// The balanced token stream: comments/processing discarded, missing end
  /// tags inserted (marked synthetic), self-closing tags expanded.
  const std::vector<HtmlToken>& tokens() const { return tokens_; }

  /// The original document text.
  const std::string& document() const { return document_; }

  /// The node with the most immediate children (the paper's conjecture:
  /// this subtree contains the records of interest). Ties resolve to the
  /// earliest node in preorder. Returns the super-root for an empty tree.
  const TagNode& HighestFanoutSubtree() const;

  /// Number of start tags within `node`'s token span, including the node's
  /// own start tag (the paper's "total number of tags in the subtree").
  /// The super-root contributes no tag of its own.
  size_t CountStartTags(const TagNode& node) const;

  /// Concatenated plain text within the node's region, in document order.
  std::string PlainText(const TagNode& node) const;

  /// Renders the tree in the style of the paper's Figure 2(b):
  /// one node per line, indented by depth.
  std::string ToAsciiArt() const;

  /// Total number of nodes (excluding the super-root).
  size_t NodeCount() const;

  /// Inclusive token-index range [first, last] covering `node`'s region in
  /// tokens(). For the super-root this is the whole stream. The range is
  /// empty (first > last) only for an empty document.
  std::pair<size_t, size_t> TokenSpan(const TagNode& node) const;

 private:
  std::unique_ptr<TagNode> root_;
  std::vector<HtmlToken> tokens_;
  std::string document_;
};

/// Calls `visit(node, depth)` for every node in preorder, super-root at
/// depth 0. Iterative (explicit stack): safe on arbitrarily deep trees,
/// which machine-call recursion is not. This is the approved traversal
/// helper — webrbd_lint's tagnode-recursion rule flags functions that
/// recurse over TagNode children directly.
template <typename Visitor>
void PreOrderVisit(const TagNode& node, Visitor&& visit, int depth = 0) {
  struct Frame {
    const TagNode* node;
    int depth;
  };
  std::vector<Frame> stack;
  stack.push_back({&node, depth});
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    visit(*frame.node, frame.depth);
    // Children pushed in reverse so the first child pops (and is visited)
    // first — identical order to the recursive formulation.
    for (auto it = frame.node->children.rbegin();
         it != frame.node->children.rend(); ++it) {
      stack.push_back({it->get(), frame.depth + 1});
    }
  }
}

}  // namespace webrbd

#endif  // WEBRBD_HTML_TAG_TREE_H_
