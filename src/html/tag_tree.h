// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// The paper's "tag tree": a tree of nested tag regions (Section 3). A node
// identifies a region of the document; a region starts at a start-tag and
// ends at its end-tag, or — when the end-tag is missing — just before the
// next tag. Nodes carry the plain text immediately inside the region (the
// paper's "I") and immediately after it ("O").
//
// Storage model: every TagNode (and each node's children array) lives in a
// DocumentArena (html/arena.h); names are interned tag symbols backed by
// the arena's intern table, child lists are contiguous pointer spans, and
// text fields are views into the balanced token stream the TagTree owns.
// Nodes are trivially destructible — destroying a tree is one arena
// release, with no per-node work at any nesting depth.

#ifndef WEBRBD_HTML_TAG_TREE_H_
#define WEBRBD_HTML_TAG_TREE_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "html/arena.h"
#include "html/token.h"

namespace webrbd {

/// One region node of a tag tree. Arena-allocated and trivially
/// destructible: all reference-like members view storage owned elsewhere
/// (the arena's intern table, the TagTree's token stream, the arena).
struct TagNode {
  /// Lowercased tag name, backed by the intern table. The synthetic
  /// super-root is named "#document".
  std::string_view name;

  /// Interned symbol of `name` — integer name equality for the heuristics.
  TagSymbol symbol = kInvalidTagSymbol;

  /// Attributes of the start tag (views the owning token's attribute
  /// vector, which the TagTree keeps alive).
  std::span<const HtmlAttribute> attrs;

  /// Byte range [region_begin, region_end) of the region in the document,
  /// from the start of the opening tag through the end of the closing tag.
  size_t region_begin = 0;
  size_t region_end = 0;

  /// Plain text between the start-tag and the next tag ("I" in Appendix A).
  std::string_view inner_text;

  /// Plain text between the end-tag and the next tag ("O" in Appendix A).
  std::string_view tail_text;

  /// True when the end tag was inserted by the builder (paper: "missing").
  bool end_tag_synthesized = false;

  /// Index range [token_begin, token_end] into TagTree::tokens() covering
  /// this node's start tag through its end tag, inclusive.
  size_t token_begin = 0;
  size_t token_end = 0;

  TagNode* parent = nullptr;

  /// Immediate children, in document order — one contiguous arena array.
  std::span<TagNode* const> children;

  /// Number of immediate children — the paper's "fan-out".
  size_t fanout() const { return children.size(); }
};

static_assert(std::is_trivially_destructible_v<TagNode>,
              "TagNode must die with its arena, destructor-free");

/// Owns or borrows the DocumentArena a tree's nodes live in. Trees built
/// standalone own a private arena; trees built by a batch worker borrow
/// the worker's arena, which the worker Reset()s between documents.
class ArenaHandle {
 public:
  explicit ArenaHandle(std::unique_ptr<DocumentArena> owned)
      : owned_(std::move(owned)), arena_(owned_.get()) {}
  explicit ArenaHandle(DocumentArena* borrowed) : arena_(borrowed) {}

  ArenaHandle(ArenaHandle&& other) noexcept
      : owned_(std::move(other.owned_)), arena_(other.arena_) {
    other.arena_ = nullptr;
  }
  ArenaHandle& operator=(ArenaHandle&& other) noexcept {
    owned_ = std::move(other.owned_);
    arena_ = other.arena_;
    other.arena_ = nullptr;
    return *this;
  }

  DocumentArena* get() const { return arena_; }
  DocumentArena* operator->() const { return arena_; }

 private:
  std::unique_ptr<DocumentArena> owned_;
  DocumentArena* arena_;
};

/// An immutable tag tree plus the (rewritten, balanced) token stream it was
/// built from. The heuristics in src/core walk the token stream restricted
/// to a node's token span, which preserves the flat tag/text order the
/// paper's interval and adjacency computations need.
class TagTree {
 public:
  /// `document` is the exact buffer the tokens were lexed from: token
  /// name/text/attribute views borrow its bytes (html/token.h), so the
  /// tree holds it behind a unique_ptr — a stable heap address that moving
  /// the TagTree never relocates (a plain std::string member would SSO-
  /// relocate small documents on move and dangle every view).
  TagTree(ArenaHandle arena, TagNode* root, std::vector<HtmlToken> tokens,
          std::vector<TagSymbol> token_symbols,
          std::unique_ptr<std::string> document)
      : arena_(std::move(arena)),
        root_(root),
        tokens_(std::move(tokens)),
        token_symbols_(std::move(token_symbols)),
        document_(std::move(document)) {}

  TagTree(TagTree&&) = default;
  TagTree& operator=(TagTree&&) = default;

  /// The synthetic "#document" super-root. Real top-level elements (usually
  /// a single <html>) are its children.
  const TagNode& root() const { return *root_; }

  /// The balanced token stream: comments/processing discarded, missing end
  /// tags inserted (marked synthetic), self-closing tags expanded.
  const std::vector<HtmlToken>& tokens() const { return tokens_; }

  /// Interned tag symbol per token, parallel to tokens(). Text tokens
  /// carry kInvalidTagSymbol. Heuristic scans compare these integers
  /// instead of the tokens' name strings.
  const std::vector<TagSymbol>& token_symbols() const {
    return token_symbols_;
  }

  /// The intern table behind this tree's symbols (shared by every tree
  /// built through the same arena).
  const TagNameInterner& interner() const { return arena_->interner(); }

  /// Symbol of a tag name within this tree's table; kInvalidTagSymbol for
  /// names no tree on this arena has ever seen (which therefore cannot
  /// occur in tokens()).
  TagSymbol SymbolOf(std::string_view name) const {
    return interner().Find(name);
  }

  /// Display name of an interned symbol.
  std::string_view NameOf(TagSymbol symbol) const {
    return interner().NameOf(symbol);
  }

  /// The original document text (the buffer the token views borrow).
  const std::string& document() const { return *document_; }

  /// The node with the most immediate children (the paper's conjecture:
  /// this subtree contains the records of interest). Ties resolve to the
  /// earliest node in preorder. Returns the super-root for an empty tree.
  const TagNode& HighestFanoutSubtree() const;

  /// Number of start tags within `node`'s token span, including the node's
  /// own start tag (the paper's "total number of tags in the subtree").
  /// The super-root contributes no tag of its own.
  size_t CountStartTags(const TagNode& node) const;

  /// Concatenated plain text within the node's region, in document order.
  std::string PlainText(const TagNode& node) const;

  /// Renders the tree in the style of the paper's Figure 2(b):
  /// one node per line, indented by depth.
  std::string ToAsciiArt() const;

  /// Total number of nodes (excluding the super-root).
  size_t NodeCount() const;

  /// Inclusive token-index range [first, last] covering `node`'s region in
  /// tokens(). For the super-root this is the whole stream. The range is
  /// empty (first > last) only for an empty document.
  std::pair<size_t, size_t> TokenSpan(const TagNode& node) const;

 private:
  ArenaHandle arena_;
  TagNode* root_;
  std::vector<HtmlToken> tokens_;
  std::vector<TagSymbol> token_symbols_;
  std::unique_ptr<std::string> document_;
};

/// Calls `visit(node, depth)` for every node in preorder, super-root at
/// depth 0. Iterative (explicit stack): safe on arbitrarily deep trees,
/// which machine-call recursion is not. This is the approved traversal
/// helper — webrbd_lint's tagnode-recursion rule flags functions that
/// recurse over TagNode children directly.
template <typename Visitor>
void PreOrderVisit(const TagNode& node, Visitor&& visit, int depth = 0) {
  struct Frame {
    const TagNode* node;
    int depth;
  };
  std::vector<Frame> stack;
  stack.push_back({&node, depth});
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    visit(*frame.node, frame.depth);
    // Children pushed in reverse so the first child pops (and is visited)
    // first — identical order to the recursive formulation.
    for (auto it = frame.node->children.rbegin();
         it != frame.node->children.rend(); ++it) {
      stack.push_back({*it, frame.depth + 1});
    }
  }
}

}  // namespace webrbd

#endif  // WEBRBD_HTML_TAG_TREE_H_
