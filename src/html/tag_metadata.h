// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// Static knowledge about HTML tag names, scoped to what the tag-tree
// builder and lexer need. Deliberately era-appropriate: the vocabulary is
// HTML 3.2/4.0, the kind of markup the paper's 1998 corpus used.

#ifndef WEBRBD_HTML_TAG_METADATA_H_
#define WEBRBD_HTML_TAG_METADATA_H_

#include <string_view>

namespace webrbd {

/// True for tags that never take an end tag (<br>, <hr>, <img>, ...).
/// The tree builder still handles unknown unclosed tags via the paper's
/// missing-end-tag insertion; this list just classifies the common cases
/// and lets the lexer/pretty-printer render them idiomatically.
bool IsVoidTag(std::string_view lowercase_name);

/// True for elements whose content is raw text up to the matching end tag
/// (<script>, <style>); the lexer must not tokenize their bodies.
bool IsRawTextTag(std::string_view lowercase_name);

/// True iff the name is a syntactically plausible tag name: ASCII letter
/// first, then letters/digits/hyphens. Used by the lexer to distinguish
/// real tags from stray '<' characters in text.
bool IsValidTagName(std::string_view name);

}  // namespace webrbd

#endif  // WEBRBD_HTML_TAG_METADATA_H_
