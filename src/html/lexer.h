// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#ifndef WEBRBD_HTML_LEXER_H_
#define WEBRBD_HTML_LEXER_H_

#include <string_view>
#include <vector>

#include "html/arena.h"
#include "html/token.h"
#include "robust/limits.h"
#include "util/result.h"

namespace webrbd {

/// Tokenizes an HTML document into tags, text runs, comments, and
/// processing instructions.
///
/// The lexer is forgiving, in keeping with 1998-era markup: a '<' that does
/// not open a plausible tag is treated as text; unterminated constructs are
/// closed at end of input; attribute values may be single-quoted,
/// double-quoted, or bare; a quoted value whose closing quote never comes
/// is re-lexed as unquoted (counted in robust.lexer_recoveries) instead of
/// swallowing the rest of the document. <script>/<style> bodies are
/// consumed as raw text.
///
/// ZERO-COPY: the returned tokens BORROW `document` (and `arena`, for the
/// rare mixed-case tag-name spill — see html/token.h). The caller must keep
/// both alive for as long as it uses the tokens; `document` must therefore
/// be stable storage, not a temporary. Hot paths scan word-at-a-time via
/// util/swar.h (SSE2/NEON under the WEBRBD_SIMD build option).
///
/// The lexer never fails on document *shape* — only on documents that
/// exceed the fatal DocumentLimits caps (document bytes, token count),
/// which return kResourceExhausted. Under DocumentLimits::Unlimited() the
/// common path is LexHtml(doc, limits, arena).value().
[[nodiscard]] Result<std::vector<HtmlToken>> LexHtml(
    std::string_view document, const robust::DocumentLimits& limits,
    DocumentArena& arena);

/// Convenience overload using the production default limits. The same
/// borrowing contract applies.
[[nodiscard]] Result<std::vector<HtmlToken>> LexHtml(std::string_view document,
                                                     DocumentArena& arena);

}  // namespace webrbd

#endif  // WEBRBD_HTML_LEXER_H_
