// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "html/tag_metadata.h"

#include "util/string_util.h"

namespace webrbd {

bool IsVoidTag(std::string_view name) {
  // HTML 3.2 / 4.0 empty elements.
  return name == "br" || name == "hr" || name == "img" || name == "input" ||
         name == "meta" || name == "link" || name == "area" ||
         name == "base" || name == "basefont" || name == "col" ||
         name == "frame" || name == "param" || name == "isindex" ||
         name == "spacer" || name == "wbr" || name == "embed";
}

bool IsRawTextTag(std::string_view name) {
  return name == "script" || name == "style";
}

bool IsValidTagName(std::string_view name) {
  if (name.empty() || !IsAsciiAlpha(name[0])) return false;
  for (char c : name) {
    if (!IsAsciiAlnum(c) && c != '-' && c != ':') return false;
  }
  return true;
}

}  // namespace webrbd
