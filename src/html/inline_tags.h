// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// The shared inline-tag set: tags whose boundaries do not interrupt text
// flow when reconstructing a region's plain text (every other tag renders
// as a line break, as a browser would). Used by html/text_index.cc and
// core/record_extractor.cc, which must agree byte-for-byte.

#ifndef WEBRBD_HTML_INLINE_TAGS_H_
#define WEBRBD_HTML_INLINE_TAGS_H_

#include <string_view>
#include <vector>

#include "html/arena.h"

namespace webrbd {

/// True for tags whose boundaries do not interrupt text flow (b, i, a,
/// span, ...).
bool IsInlineTagName(std::string_view name);

/// Per-symbol rendering of the inline set: table[s] is true iff
/// interner.NameOf(s) is an inline tag. Sized to interner.size(); callers
/// must bounds-check (or only index with symbols from the same interner).
std::vector<bool> InlineSymbolTable(const TagNameInterner& interner);

}  // namespace webrbd

#endif  // WEBRBD_HTML_INLINE_TAGS_H_
