// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "html/inline_tags.h"

namespace webrbd {

namespace {

constexpr std::string_view kInlineTagNames[] = {
    "b",  "i",    "u",     "em",  "strong", "font", "a",
    "span", "small", "big", "tt",  "sup",    "sub"};

}  // namespace

bool IsInlineTagName(std::string_view name) {
  for (std::string_view inline_name : kInlineTagNames) {
    if (name == inline_name) return true;
  }
  return false;
}

std::vector<bool> InlineSymbolTable(const TagNameInterner& interner) {
  std::vector<bool> table(interner.size(), false);
  for (std::string_view name : kInlineTagNames) {
    const TagSymbol symbol = interner.Find(name);
    if (symbol != kInvalidTagSymbol) table[symbol] = true;
  }
  return table;
}

}  // namespace webrbd
