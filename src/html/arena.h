// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// DocumentArena: a monotonic per-document allocator that owns every
// TagNode (and every per-node side array) of a tag tree, plus the
// tag-name intern table. Tree construction bump-allocates out of large
// blocks instead of one heap allocation per node, and tree destruction is
// a single arena release — nodes are trivially destructible, so no
// per-node destructor runs at all (this subsumes the iterative-destructor
// workaround the pointer-chased tree needed against deep-nesting bombs).
//
// Reset() retains the allocated blocks AND the intern table, so a batch
// worker that processes a chunk of documents through one arena reuses
// warm memory and warm symbols across the whole chunk (the allocator
// reuse BatchOptions::chunk_size promises).
//
// Thread-compatibility: an arena is single-threaded state. Each batch
// worker owns its own; nothing here is synchronized.

#ifndef WEBRBD_HTML_ARENA_H_
#define WEBRBD_HTML_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string_view>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

namespace webrbd {

/// Dense integer id of an interned tag name. Name equality throughout the
/// heuristics is symbol equality — one integer compare instead of a
/// string compare per token.
using TagSymbol = uint16_t;

/// "No symbol": text tokens in a symbol stream, unknown names in lookups,
/// and the sentinel returned by TagNameInterner::Intern when the 16-bit
/// table overflows (65535 distinct names — far beyond any real document;
/// the tree builder converts it into a per-document kResourceExhausted).
inline constexpr TagSymbol kInvalidTagSymbol = 0xFFFF;

/// Tag-name intern table: one TagSymbol per distinct (lowercased) name.
/// Name bytes live in the interner's own monotonic pool, so the
/// string_views it hands out stay valid for the interner's lifetime —
/// across DocumentArena::Reset() in particular.
class TagNameInterner {
 public:
  TagNameInterner() = default;
  TagNameInterner(const TagNameInterner&) = delete;
  TagNameInterner& operator=(const TagNameInterner&) = delete;

  /// Returns the symbol of `name`, interning it on first sight. Returns
  /// kInvalidTagSymbol when the table is full.
  TagSymbol Intern(std::string_view name);

  /// Lookup without interning; kInvalidTagSymbol when `name` was never
  /// interned.
  TagSymbol Find(std::string_view name) const {
    auto it = map_.find(name);
    return it == map_.end() ? kInvalidTagSymbol : it->second;
  }

  /// The interned name of `symbol`; empty view for kInvalidTagSymbol or
  /// out-of-range symbols.
  std::string_view NameOf(TagSymbol symbol) const {
    return symbol < names_.size() ? names_[symbol] : std::string_view();
  }

  /// Number of distinct names interned so far.
  size_t size() const { return names_.size(); }

  /// Bytes reserved for name storage (diagnostics).
  size_t storage_bytes() const { return storage_bytes_; }

 private:
  std::string_view Store(std::string_view name);

  std::unordered_map<std::string_view, TagSymbol> map_;
  std::vector<std::string_view> names_;  // indexed by symbol
  std::vector<std::unique_ptr<char[]>> pools_;
  size_t pool_used_ = 0;  // bytes used in pools_.back()
  size_t pool_size_ = 0;  // capacity of pools_.back()
  size_t storage_bytes_ = 0;
};

/// Monotonic block allocator for one document's tag tree.
class DocumentArena {
 public:
  DocumentArena() = default;
  DocumentArena(const DocumentArena&) = delete;
  DocumentArena& operator=(const DocumentArena&) = delete;

  /// Returns `bytes` of storage aligned to `alignment` (a power of two).
  /// Never fails: block allocation growth is bounded by the caller's
  /// DocumentLimits::max_arena_bytes checks against bytes_in_use().
  void* Allocate(size_t bytes, size_t alignment);

  /// Constructs a trivially-destructible T in the arena. No destructor
  /// will ever run for it — the memory is released wholesale.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are released without running destructors");
    // Placement new into arena storage — this is the owner the
    // raw-new-delete rule exists to funnel allocations through.
    return new (Allocate(sizeof(T), alignof(T)))  // lint:allow(raw-new-delete)
        T(std::forward<Args>(args)...);
  }

  /// Copies `values` into a contiguous arena-owned array.
  template <typename T>
  std::span<T> CopyArray(const T* values, size_t count) {
    static_assert(std::is_trivially_destructible_v<T> &&
                  std::is_trivially_copyable_v<T>);
    if (count == 0) return {};
    T* out = static_cast<T*>(Allocate(count * sizeof(T), alignof(T)));
    std::memcpy(out, values, count * sizeof(T));
    return {out, count};
  }

  /// Copies `text` into the arena.
  std::string_view CopyString(std::string_view text);

  /// A view over `head` followed by `tail`, materialized in the arena.
  /// When `head` is the most recent arena allocation it is extended in
  /// place (no re-copy of the head bytes).
  std::string_view Concat(std::string_view head, std::string_view tail);

  /// Releases everything allocated since construction or the last Reset,
  /// retaining block capacity for reuse. The intern table survives.
  void Reset();

  /// Bytes handed out since the last Reset (including alignment padding).
  size_t bytes_in_use() const { return bytes_in_use_; }

  /// Total block capacity held by the arena.
  size_t bytes_reserved() const { return bytes_reserved_; }

  TagNameInterner& interner() { return interner_; }
  const TagNameInterner& interner() const { return interner_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t capacity = 0;
  };

  // Moves the cursor to a (retained or new) block with >= `bytes` free.
  void NextBlock(size_t bytes);

  char* cursor_ = nullptr;
  char* block_end_ = nullptr;
  std::vector<Block> blocks_;
  size_t active_block_ = 0;  // blocks_ index cursor_ points into
  size_t bytes_in_use_ = 0;
  size_t bytes_reserved_ = 0;
  TagNameInterner interner_;
};

}  // namespace webrbd

#endif  // WEBRBD_HTML_ARENA_H_
