// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "html/arena.h"

#include <algorithm>
#include <string>

#include "util/string_util.h"

namespace webrbd {

namespace {

// Block sizing: start small enough that tiny documents stay cheap, grow
// geometrically so huge documents need O(log n) blocks, cap the growth so
// a retained arena never holds one pathological mega-block per worker.
constexpr size_t kMinBlockBytes = 64 << 10;   // 64 KiB
constexpr size_t kMaxBlockBytes = 8 << 20;    // 8 MiB
constexpr size_t kInternPoolBytes = 4 << 10;  // 4 KiB per name pool

}  // namespace

// --- TagNameInterner -------------------------------------------------------

std::string_view TagNameInterner::Store(std::string_view name) {
  if (name.size() > pool_size_ - pool_used_ || pools_.empty()) {
    const size_t size = std::max(kInternPoolBytes, name.size());
    pools_.push_back(std::make_unique_for_overwrite<char[]>(size));
    pool_used_ = 0;
    pool_size_ = size;
    storage_bytes_ += size;
  }
  char* out = pools_.back().get() + pool_used_;
  std::memcpy(out, name.data(), name.size());
  pool_used_ += name.size();
  return {out, name.size()};
}

TagSymbol TagNameInterner::Intern(std::string_view name) {
  // Symbols are keyed by the lowercased name. The lexer already hands out
  // lowercase names, so the ContainsAsciiUpper word-scan is a nearly free
  // guard; only defensive callers with mixed-case input pay the transform.
  if (ContainsAsciiUpper(name)) return Intern(AsciiToLower(name));
  auto it = map_.find(name);
  if (it != map_.end()) return it->second;
  if (names_.size() >= kInvalidTagSymbol) return kInvalidTagSymbol;
  const std::string_view stored = Store(name);
  const TagSymbol symbol = static_cast<TagSymbol>(names_.size());
  names_.push_back(stored);
  map_.emplace(stored, symbol);  // key views the stable pool copy
  return symbol;
}

// --- DocumentArena ---------------------------------------------------------

void DocumentArena::NextBlock(size_t bytes) {
  // Reuse the next retained block that fits; blocks too small for this
  // request are skipped (they stay idle until the next Reset).
  while (active_block_ + 1 < blocks_.size()) {
    ++active_block_;
    if (blocks_[active_block_].capacity >= bytes) {
      cursor_ = blocks_[active_block_].data.get();
      block_end_ = cursor_ + blocks_[active_block_].capacity;
      return;
    }
  }
  const size_t last = blocks_.empty() ? 0 : blocks_.back().capacity;
  const size_t capacity =
      std::max(bytes, std::clamp(last * 2, kMinBlockBytes, kMaxBlockBytes));
  Block block;
  block.data = std::make_unique_for_overwrite<char[]>(capacity);
  block.capacity = capacity;
  bytes_reserved_ += capacity;
  blocks_.push_back(std::move(block));
  active_block_ = blocks_.size() - 1;
  cursor_ = blocks_.back().data.get();
  block_end_ = cursor_ + capacity;
}

void* DocumentArena::Allocate(size_t bytes, size_t alignment) {
  size_t padding =
      (alignment - reinterpret_cast<uintptr_t>(cursor_) % alignment) %
      alignment;
  if (cursor_ == nullptr || cursor_ + padding + bytes > block_end_) {
    NextBlock(bytes + alignment);
    padding =
        (alignment - reinterpret_cast<uintptr_t>(cursor_) % alignment) %
        alignment;
  }
  char* out = cursor_ + padding;
  cursor_ = out + bytes;
  bytes_in_use_ += padding + bytes;
  return out;
}

std::string_view DocumentArena::CopyString(std::string_view text) {
  if (text.empty()) return {};
  char* out = static_cast<char*>(Allocate(text.size(), 1));
  std::memcpy(out, text.data(), text.size());
  return {out, text.size()};
}

std::string_view DocumentArena::Concat(std::string_view head,
                                       std::string_view tail) {
  if (head.empty()) return CopyString(tail);
  if (tail.empty()) return head;
  // Extend in place when `head` is the most recent allocation and the
  // current block has room: common when a node's text accrues from several
  // adjacent tokens (comments discarded between text runs).
  if (head.data() + head.size() == cursor_ &&
      cursor_ + tail.size() <= block_end_) {
    std::memcpy(cursor_, tail.data(), tail.size());
    cursor_ += tail.size();
    bytes_in_use_ += tail.size();
    return {head.data(), head.size() + tail.size()};
  }
  char* out = static_cast<char*>(Allocate(head.size() + tail.size(), 1));
  std::memcpy(out, head.data(), head.size());
  std::memcpy(out + head.size(), tail.data(), tail.size());
  return {out, head.size() + tail.size()};
}

void DocumentArena::Reset() {
  active_block_ = 0;
  bytes_in_use_ = 0;
  if (blocks_.empty()) {
    cursor_ = nullptr;
    block_end_ = nullptr;
    return;
  }
  cursor_ = blocks_[0].data.get();
  block_end_ = cursor_ + blocks_[0].capacity;
}

}  // namespace webrbd
