// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "html/text_index.h"

#include <algorithm>

#include "html/inline_tags.h"

namespace webrbd {

TextIndex::TextIndex(const TagTree& tree, const TagNode& node)
    : tree_(&tree), node_(&node) {
  const auto [first, last] = tree.TokenSpan(node);
  const auto& tokens = tree.tokens();
  const auto& symbols = tree.token_symbols();
  const std::vector<bool> inline_symbol = InlineSymbolTable(tree.interner());
  region_end_ = node.region_end;
  if (&node == &tree.root()) region_end_ = tree.document().size();

  for (size_t i = first; i <= last && i < tokens.size(); ++i) {
    const HtmlToken& token = tokens[i];
    if (token.kind == HtmlToken::Kind::kText) {
      segments_.push_back(Segment{text_.size(), token.begin, false});
      text_ += token.text;
    } else if (token.kind == HtmlToken::Kind::kStartTag &&
               !inline_symbol[symbols[i]]) {
      segments_.push_back(Segment{text_.size(), token.begin, true});
      text_ += '\n';
    }
  }
}

size_t TextIndex::ToDocumentOffset(size_t text_offset) const {
  if (segments_.empty()) return region_end_;
  // Find the last segment whose text_begin <= text_offset.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), text_offset,
      [](size_t offset, const Segment& segment) {
        return offset < segment.text_begin;
      });
  if (it == segments_.begin()) return segments_.front().doc_begin;
  --it;
  if (it->synthetic) {
    // Inside an inserted boundary byte: report the tag's position.
    return it->doc_begin;
  }
  const size_t delta = text_offset - it->text_begin;
  return std::min(it->doc_begin + delta, region_end_);
}

std::vector<size_t> TextIndex::SeparatorPositions(
    const std::string& tag) const {
  return SeparatorPositionsInRegion(*tree_, *node_, tag);
}

std::vector<size_t> TextIndex::SeparatorPositionsInRegion(
    const TagTree& tree, const TagNode& node, const std::string& tag) {
  std::vector<size_t> positions;
  const TagSymbol symbol = tree.SymbolOf(tag);
  if (symbol == kInvalidTagSymbol) return positions;
  const auto [first, last] = tree.TokenSpan(node);
  const auto& tokens = tree.tokens();
  const auto& symbols = tree.token_symbols();
  for (size_t i = first; i <= last && i < tokens.size(); ++i) {
    if (symbols[i] == symbol &&
        tokens[i].kind == HtmlToken::Kind::kStartTag) {
      positions.push_back(tokens[i].begin);
    }
  }
  return positions;
}

}  // namespace webrbd
