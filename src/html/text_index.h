// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// TextIndex: the plain text of a tag-tree region together with a mapping
// from plain-text offsets back to document byte offsets. The paper's
// integrated pipeline (Section 4.5) depends on this: recognizers run ONCE
// over the region's plain text, each match is positioned in the document,
// and the resulting Data-Record Table is partitioned at the separator
// tags' document positions — no per-record re-scan.

#ifndef WEBRBD_HTML_TEXT_INDEX_H_
#define WEBRBD_HTML_TEXT_INDEX_H_

#include <string>
#include <vector>

#include "html/tag_tree.h"

namespace webrbd {

/// Plain text of a region plus offset mapping into the source document.
class TextIndex {
 public:
  /// Builds the index over `node`'s region within `tree`. Text tokens are
  /// concatenated verbatim (inline-rendering semantics); block-level tag
  /// boundaries insert a single '\n' so words never glue across them.
  TextIndex(const TagTree& tree, const TagNode& node);

  /// The concatenated plain text.
  const std::string& text() const { return text_; }

  /// Document byte offset of plain-text offset `text_offset`. Synthetic
  /// separator bytes map to the document position of the following text.
  /// `text_offset == text().size()` maps to the region's end.
  size_t ToDocumentOffset(size_t text_offset) const;

  /// Document positions (start-tag begin offsets) of every occurrence of
  /// `tag` start tags within the region, ascending.
  std::vector<size_t> SeparatorPositions(const std::string& tag) const;

  /// Same scan without constructing an index: separator positions come
  /// straight off the region's token span, no text materialization. For
  /// callers that need cut points but never read the region text (an
  /// ontology with no matching rules produces an empty Data-Record Table,
  /// so there is nothing to recognize or reposition).
  static std::vector<size_t> SeparatorPositionsInRegion(
      const TagTree& tree, const TagNode& node, const std::string& tag);

 private:
  struct Segment {
    size_t text_begin;  // offset of this segment's first byte in text_
    size_t doc_begin;   // document offset of that byte
    bool synthetic;     // true for inserted '\n' boundary bytes
  };

  std::string text_;
  std::vector<Segment> segments_;
  size_t region_end_ = 0;
  const TagTree* tree_;
  const TagNode* node_;
};

}  // namespace webrbd

#endif  // WEBRBD_HTML_TEXT_INDEX_H_
