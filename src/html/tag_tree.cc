// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "html/tag_tree.h"

namespace webrbd {

const TagNode& TagTree::HighestFanoutSubtree() const {
  const TagNode* best = root_;
  PreOrderVisit(*root_, [&best](const TagNode& node, int) {
    if (node.fanout() > best->fanout()) best = &node;
  });
  return *best;
}

size_t TagTree::CountStartTags(const TagNode& node) const {
  if (&node == root_) {
    // The super-root has no start tag of its own; count the whole stream.
    size_t count = 0;
    for (const HtmlToken& token : tokens_) {
      if (token.kind == HtmlToken::Kind::kStartTag) ++count;
    }
    return count;
  }
  size_t count = 0;
  for (size_t i = node.token_begin; i <= node.token_end && i < tokens_.size();
       ++i) {
    if (tokens_[i].kind == HtmlToken::Kind::kStartTag) ++count;
  }
  return count;
}

std::string TagTree::PlainText(const TagNode& node) const {
  std::string out;
  size_t begin = node.token_begin;
  size_t end = node.token_end;
  if (&node == root_) {
    begin = 0;
    end = tokens_.empty() ? 0 : tokens_.size() - 1;
  }
  for (size_t i = begin; i <= end && i < tokens_.size(); ++i) {
    if (tokens_[i].kind == HtmlToken::Kind::kText) out += tokens_[i].text;
  }
  return out;
}

std::string TagTree::ToAsciiArt() const {
  std::string out;
  PreOrderVisit(*root_, [&out](const TagNode& node, int depth) {
    for (int i = 0; i < depth; ++i) out += "  ";
    out += node.name;
    out += "\n";
  });
  return out;
}

std::pair<size_t, size_t> TagTree::TokenSpan(const TagNode& node) const {
  if (&node == root_) {
    if (tokens_.empty()) return {1, 0};  // empty range
    return {0, tokens_.size() - 1};
  }
  return {node.token_begin, node.token_end};
}

size_t TagTree::NodeCount() const {
  size_t count = 0;
  PreOrderVisit(*root_, [&count](const TagNode&, int) { ++count; });
  return count > 0 ? count - 1 : 0;  // exclude the super-root
}

}  // namespace webrbd
