// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// SWAR fast-path lexer. The token-stream SEMANTICS are pinned by the
// frozen pre-SWAR copy in bench/legacy_lexer_baseline.cc and the golden
// equivalence suite (tests/html/lexer_equivalence_test.cc): every control-
// flow decision below — the loop-top max_tokens check, the attribute
// recovery paths, the quoted-value window, the raw-text close rules —
// mirrors the legacy lexer exactly. What changed is HOW bytes move:
//
//   - text runs, raw-text bodies, comment/PI closers, and quoted attribute
//     values are located by util/swar.h bulk scans (8–16 bytes/iteration)
//     instead of per-char loops, and
//   - tokens are zero-copy: name/text/attribute values are string_views of
//     the source buffer; tag/attribute names are lowercased lazily, with
//     an arena spill only when the source spelling is mixed-case (counted
//     in webrbd_html_lexer_name_spills_total).

#include "html/lexer.h"

#include <array>
#include <cstdint>
#include <string>

#include "html/tag_metadata.h"
#include "obs/stages.h"
#include "robust/limits.h"
#include "util/string_util.h"
#include "util/swar.h"

namespace webrbd {

namespace {

using robust::DocumentLimits;
using robust::LimitExceeded;

// Byte-class table for the short scans (tag names, attribute names,
// whitespace runs) where a table lookup beats setting up a word loop.
constexpr uint8_t kSpace = 1;         // space \t \n \r \f \v
constexpr uint8_t kTagNameChar = 2;   // [A-Za-z0-9:-]
constexpr uint8_t kAttrNameStop = 4;  // '=' '>' '/' or whitespace
constexpr uint8_t kAlpha = 8;         // [A-Za-z]

constexpr std::array<uint8_t, 256> BuildCharClasses() {
  std::array<uint8_t, 256> table{};
  for (const char c : {' ', '\t', '\n', '\r', '\f', '\v'}) {
    table[static_cast<uint8_t>(c)] |= kSpace | kAttrNameStop;
  }
  for (int c = 'a'; c <= 'z'; ++c) table[c] |= kTagNameChar | kAlpha;
  for (int c = 'A'; c <= 'Z'; ++c) table[c] |= kTagNameChar | kAlpha;
  for (int c = '0'; c <= '9'; ++c) table[c] |= kTagNameChar;
  table[static_cast<uint8_t>('-')] |= kTagNameChar;
  table[static_cast<uint8_t>(':')] |= kTagNameChar;
  for (const char c : {'=', '>', '/'}) {
    table[static_cast<uint8_t>(c)] |= kAttrNameStop;
  }
  return table;
}

constexpr std::array<uint8_t, 256> kCharClass = BuildCharClasses();

inline bool Is(char c, uint8_t mask) {
  return (kCharClass[static_cast<uint8_t>(c)] & mask) != 0;
}

class Lexer {
 public:
  Lexer(std::string_view doc, const DocumentLimits& limits,
        DocumentArena& arena)
      : doc_(doc), limits_(limits), arena_(arena) {}

  Result<std::vector<HtmlToken>> Lex() {
    if (LimitExceeded(doc_.size(), limits_.max_document_bytes)) {
      obs::Robust().trip_doc_bytes->Increment();
      return Status::ResourceExhausted(
          "document size " + std::to_string(doc_.size()) +
          " exceeds max_document_bytes " +
          std::to_string(limits_.max_document_bytes));
    }
    // Pre-size the token vector from the document size. Across the
    // synthetic corpus one token spans ~21–28 bytes of HTML; reserving
    // doc/16 overshoots by a modest constant factor, turning the
    // push_back reallocation cascade (and its token moves, ~15% of lex
    // time when it triggers) into a single allocation for virtually
    // every real document.
    tokens_.reserve(doc_.size() / 16 + 4);
    while (pos_ < doc_.size()) {
      if (LimitExceeded(tokens_.size(), limits_.max_tokens)) {
        obs::Robust().trip_tokens->Increment();
        return Status::ResourceExhausted(
            "token stream exceeds max_tokens " +
            std::to_string(limits_.max_tokens));
      }
      if (doc_[pos_] == '<' && TryLexMarkup()) continue;
      LexTextRun();
    }
    FlushText();
    obs::Html().lexer_bytes->Increment(doc_.size());
    obs::Html().lexer_tokens->Increment(tokens_.size());
    if (name_spills_ > 0) {
      obs::Html().lexer_name_spills->Increment(name_spills_);
    }
    return std::move(tokens_);
  }

 private:
  /// The lazy-lowercase step: already-lowercase source bytes (checked
  /// word-at-a-time) are viewed in place; mixed-case names are lowercased
  /// into the arena once and the copy viewed instead.
  std::string_view LowerName(std::string_view raw) {
    if (!ContainsAsciiUpper(raw)) return raw;
    ++name_spills_;
    char* out = static_cast<char*>(arena_.Allocate(raw.size(), 1));
    for (size_t i = 0; i < raw.size(); ++i) {
      const char c = raw[i];
      out[i] = c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
    }
    return {out, raw.size()};
  }

  // Attempts to lex a markup construct at pos_ (which points at '<').
  // Returns false when the '<' is just text.
  bool TryLexMarkup() {
    size_t start = pos_;
    if (start + 1 >= doc_.size()) return false;
    char next = doc_[start + 1];
    if (next == '!') {
      FlushText();
      LexDeclaration();
      return true;
    }
    if (next == '?') {
      FlushText();
      LexProcessing();
      return true;
    }
    bool is_end = next == '/';
    size_t name_start = start + (is_end ? 2 : 1);
    size_t i = name_start;
    while (i < doc_.size() && Is(doc_[i], kTagNameChar)) ++i;
    std::string_view raw_name = doc_.substr(name_start, i - name_start);
    // The scan above only consumed [A-Za-z0-9:-] bytes, so IsValidTagName
    // reduces to "non-empty and starts with a letter" — checked inline on
    // the raw spelling, which equals the legacy lowercase-then-validate
    // order (validity is case-insensitive) without spilling names of
    // stray '<'s that never become tags.
    if (raw_name.empty() || !Is(raw_name[0], kAlpha)) return false;

    FlushText();
    // Build the token in place; LexAttributes appends nothing to tokens_,
    // so the reference stays valid while attributes are filled in.
    HtmlToken& token = tokens_.emplace_back();
    token.kind = is_end ? HtmlToken::Kind::kEndTag : HtmlToken::Kind::kStartTag;
    token.name = LowerName(raw_name);
    token.begin = start;
    pos_ = i;
    if (!is_end) {
      LexAttributes(&token);
    } else {
      // Skip anything up to '>' (end tags legally have no attributes, but
      // tolerate junk).
      pos_ = swar::FindByte(doc_, pos_, '>');
    }
    if (pos_ < doc_.size() && doc_[pos_] == '>') ++pos_;
    token.end = pos_;
    bool raw_text = token.kind == HtmlToken::Kind::kStartTag &&
                    !token.self_closing && IsRawTextTag(token.name);
    if (raw_text) LexRawText(token.name);
    return true;
  }

  void LexAttributes(HtmlToken* token) {
    bool attrs_tripped = false;
    for (;;) {
      while (pos_ < doc_.size() && Is(doc_[pos_], kSpace)) ++pos_;
      if (pos_ >= doc_.size() || doc_[pos_] == '>') return;
      if (doc_[pos_] == '/') {
        // Possible XML-style self-closing slash.
        size_t slash = pos_;
        ++pos_;
        while (pos_ < doc_.size() && Is(doc_[pos_], kSpace)) ++pos_;
        if (pos_ < doc_.size() && doc_[pos_] == '>') {
          token->self_closing = true;
          return;
        }
        pos_ = slash + 1;  // stray slash; skip it
        continue;
      }
      // Attribute name.
      size_t name_start = pos_;
      while (pos_ < doc_.size() && !Is(doc_[pos_], kAttrNameStop)) ++pos_;
      HtmlAttribute attr;
      attr.name = LowerName(doc_.substr(name_start, pos_ - name_start));
      while (pos_ < doc_.size() && Is(doc_[pos_], kSpace)) ++pos_;
      if (pos_ < doc_.size() && doc_[pos_] == '=') {
        ++pos_;
        while (pos_ < doc_.size() && Is(doc_[pos_], kSpace)) ++pos_;
        if (pos_ < doc_.size() && (doc_[pos_] == '"' || doc_[pos_] == '\'')) {
          char quote = doc_[pos_++];
          size_t value_start = pos_;
          // Look for the closing quote only within the attribute-value
          // window; an unterminated quote must not swallow the rest of
          // the document into one attribute.
          size_t window = doc_.size() - value_start;
          if (limits_.max_attribute_value_bytes != 0 &&
              window > limits_.max_attribute_value_bytes) {
            window = limits_.max_attribute_value_bytes;
          }
          size_t hit = swar::FindByte(doc_.substr(0, value_start + window),
                                      value_start, quote);
          if (hit < value_start + window) {
            attr.value = doc_.substr(value_start, hit - value_start);
            pos_ = hit + 1;  // past the closing quote
          } else {
            // Recovery: no closing quote in the window. Rewind and re-lex
            // the region as an unquoted value, so lexing resynchronizes at
            // the next space or '>' instead of at end of input.
            obs::Robust().lexer_recoveries->Increment();
            pos_ = value_start;
            LexUnquotedValue(&attr);
          }
        } else {
          LexUnquotedValue(&attr);
        }
      }
      if (attr.name.empty()) continue;
      if (LimitExceeded(token->attrs.size() + 1,
                        limits_.max_attributes_per_tag)) {
        // Recoverable cap: parse (to keep positions in sync) but drop.
        if (!attrs_tripped) {
          attrs_tripped = true;
          obs::Robust().trip_attrs->Increment();
        }
        continue;
      }
      token->attrs.push_back(attr);
    }
  }

  // Scans a bare attribute value (up to the next space or '>'), storing at
  // most max_attribute_value_bytes of it.
  void LexUnquotedValue(HtmlAttribute* attr) {
    size_t value_start = pos_;
    while (pos_ < doc_.size() && doc_[pos_] != '>' &&
           !Is(doc_[pos_], kSpace)) {
      ++pos_;
    }
    size_t length = pos_ - value_start;
    if (LimitExceeded(length, limits_.max_attribute_value_bytes)) {
      obs::Robust().trip_attr_value->Increment();
      length = limits_.max_attribute_value_bytes;
    }
    attr->value = doc_.substr(value_start, length);
  }

  // First "-->" at or after `from`; doc_.size() when there is none. A '-'
  // bulk scan plus two byte checks — the first match necessarily starts at
  // a '-', so this equals doc_.find("-->", from).
  size_t FindCommentClose(size_t from) {
    size_t scan = from;
    for (;;) {
      size_t c = swar::FindByte(doc_, scan, '-');
      if (c + 3 > doc_.size()) return doc_.size();
      if (doc_[c + 1] == '-' && doc_[c + 2] == '>') return c;
      scan = c + 1;
    }
  }

  // <!-- comment --> or <!DOCTYPE ...> or any other <!...> declaration.
  void LexDeclaration() {
    size_t start = pos_;
    HtmlToken& token = tokens_.emplace_back();
    token.kind = HtmlToken::Kind::kComment;
    token.begin = start;
    if (doc_.compare(pos_, 4, "<!--") == 0) {
      size_t close = FindCommentClose(pos_ + 4);
      pos_ = close == doc_.size() ? doc_.size() : close + 3;
    } else {
      size_t close = swar::FindByte(doc_, pos_, '>');
      pos_ = close == doc_.size() ? doc_.size() : close + 1;
    }
    token.end = pos_;
  }

  // <? ... > (or <? ... ?>).
  void LexProcessing() {
    HtmlToken& token = tokens_.emplace_back();
    token.kind = HtmlToken::Kind::kProcessing;
    token.begin = pos_;
    size_t close = swar::FindByte(doc_, pos_, '>');
    pos_ = close == doc_.size() ? doc_.size() : close + 1;
    token.end = pos_;
  }

  // Consumes raw text up to (not including) the matching </name ...>.
  // One bulk '<' scan with O(1) rejects ('</' then the byte after the
  // name) before the case-insensitive name compare — the legacy lexer
  // compared the full "</name" needle at every '<' in the body, which the
  // raw-text-close-storm adversarial shape turns pathological.
  void LexRawText(std::string_view name) {
    size_t body_start = pos_;
    size_t scan = pos_;
    size_t body_end = doc_.size();
    const size_t close_size = 2 + name.size();  // "</" + name
    while (scan < doc_.size()) {
      size_t candidate = swar::FindByte(doc_, scan, '<');
      if (candidate >= doc_.size()) break;
      if (candidate + 1 < doc_.size() && doc_[candidate + 1] == '/' &&
          candidate + close_size <= doc_.size()) {
        char after = candidate + close_size < doc_.size()
                         ? doc_[candidate + close_size]
                         : '>';
        if ((after == '>' || Is(after, kSpace)) &&
            AsciiEqualsIgnoreCase(doc_.substr(candidate + 2, name.size()),
                                  name)) {
          body_end = candidate;
          break;
        }
      }
      scan = candidate + 1;
    }
    if (body_end > body_start) {
      HtmlToken& token = tokens_.emplace_back();
      token.kind = HtmlToken::Kind::kText;
      token.begin = body_start;
      token.end = body_end;
      token.text = doc_.substr(body_start, body_end - body_start);
    }
    pos_ = body_end;
  }

  // Accumulates text up to the next '<'.
  void LexTextRun() {
    if (text_start_ == std::string_view::npos) text_start_ = pos_;
    pos_ = swar::FindByte(doc_, pos_ + (doc_[pos_] == '<' ? 1 : 0), '<');
    // Note: when the '<' at pos_ turns out not to start a tag, the main
    // loop calls back into LexTextRun and we continue the same run.
  }

  void FlushText() {
    if (text_start_ == std::string_view::npos) return;
    size_t end = pos_;
    if (end > text_start_) {
      HtmlToken& token = tokens_.emplace_back();
      token.kind = HtmlToken::Kind::kText;
      token.begin = text_start_;
      token.end = end;
      token.text = doc_.substr(text_start_, end - text_start_);
    }
    text_start_ = std::string_view::npos;
  }

  std::string_view doc_;
  const DocumentLimits limits_;
  DocumentArena& arena_;
  size_t pos_ = 0;
  size_t text_start_ = std::string_view::npos;
  uint64_t name_spills_ = 0;
  std::vector<HtmlToken> tokens_;
};

}  // namespace

Result<std::vector<HtmlToken>> LexHtml(std::string_view document,
                                       const robust::DocumentLimits& limits,
                                       DocumentArena& arena) {
  obs::ScopedTimer timer(obs::Stages().lex);
  Lexer lexer(document, limits, arena);
  return lexer.Lex();
}

Result<std::vector<HtmlToken>> LexHtml(std::string_view document,
                                       DocumentArena& arena) {
  return LexHtml(document, robust::DocumentLimits::Production(), arena);
}

}  // namespace webrbd
