// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.

#include "html/lexer.h"

#include <string>

#include "html/tag_metadata.h"
#include "obs/stages.h"
#include "robust/limits.h"
#include "util/string_util.h"

namespace webrbd {

namespace {

using robust::DocumentLimits;
using robust::LimitExceeded;

class Lexer {
 public:
  Lexer(std::string_view doc, const DocumentLimits& limits)
      : doc_(doc), limits_(limits) {}

  Result<std::vector<HtmlToken>> Lex() {
    if (LimitExceeded(doc_.size(), limits_.max_document_bytes)) {
      obs::Robust().trip_doc_bytes->Increment();
      return Status::ResourceExhausted(
          "document size " + std::to_string(doc_.size()) +
          " exceeds max_document_bytes " +
          std::to_string(limits_.max_document_bytes));
    }
    // Pre-size the token vector from the document size. Across the
    // synthetic corpus one token spans ~28 bytes of HTML on average;
    // reserving doc/24 overshoots slightly, turning the push_back
    // reallocation cascade (and its token moves) into a single allocation
    // for virtually every real document.
    tokens_.reserve(doc_.size() / 24 + 4);
    while (pos_ < doc_.size()) {
      if (LimitExceeded(tokens_.size(), limits_.max_tokens)) {
        obs::Robust().trip_tokens->Increment();
        return Status::ResourceExhausted(
            "token stream exceeds max_tokens " +
            std::to_string(limits_.max_tokens));
      }
      if (doc_[pos_] == '<' && TryLexMarkup()) continue;
      LexTextRun();
    }
    FlushText();
    return std::move(tokens_);
  }

 private:
  // Attempts to lex a markup construct at pos_ (which points at '<').
  // Returns false when the '<' is just text.
  bool TryLexMarkup() {
    size_t start = pos_;
    if (start + 1 >= doc_.size()) return false;
    char next = doc_[start + 1];
    if (next == '!') {
      FlushText();
      LexDeclaration();
      return true;
    }
    if (next == '?') {
      FlushText();
      LexProcessing();
      return true;
    }
    bool is_end = next == '/';
    size_t name_start = start + (is_end ? 2 : 1);
    size_t i = name_start;
    while (i < doc_.size() && (IsAsciiAlnum(doc_[i]) || doc_[i] == '-' ||
                               doc_[i] == ':')) {
      ++i;
    }
    std::string name = AsciiToLower(doc_.substr(name_start, i - name_start));
    if (!IsValidTagName(name)) return false;  // stray '<'

    FlushText();
    // Build the token in place; LexAttributes appends nothing to tokens_,
    // so the reference stays valid while attributes are filled in.
    HtmlToken& token = tokens_.emplace_back();
    token.kind = is_end ? HtmlToken::Kind::kEndTag : HtmlToken::Kind::kStartTag;
    token.name = std::move(name);
    token.begin = start;
    pos_ = i;
    if (!is_end) {
      LexAttributes(&token);
    } else {
      // Skip anything up to '>' (end tags legally have no attributes, but
      // tolerate junk).
      while (pos_ < doc_.size() && doc_[pos_] != '>') ++pos_;
    }
    if (pos_ < doc_.size() && doc_[pos_] == '>') ++pos_;
    token.end = pos_;
    bool raw_text = token.kind == HtmlToken::Kind::kStartTag &&
                    !token.self_closing && IsRawTextTag(token.name);
    if (raw_text) LexRawText(tokens_.back().name);
    return true;
  }

  void LexAttributes(HtmlToken* token) {
    bool attrs_tripped = false;
    for (;;) {
      while (pos_ < doc_.size() && IsAsciiSpace(doc_[pos_])) ++pos_;
      if (pos_ >= doc_.size() || doc_[pos_] == '>') return;
      if (doc_[pos_] == '/') {
        // Possible XML-style self-closing slash.
        size_t slash = pos_;
        ++pos_;
        while (pos_ < doc_.size() && IsAsciiSpace(doc_[pos_])) ++pos_;
        if (pos_ < doc_.size() && doc_[pos_] == '>') {
          token->self_closing = true;
          return;
        }
        pos_ = slash + 1;  // stray slash; skip it
        continue;
      }
      // Attribute name.
      size_t name_start = pos_;
      while (pos_ < doc_.size() && doc_[pos_] != '=' && doc_[pos_] != '>' &&
             doc_[pos_] != '/' && !IsAsciiSpace(doc_[pos_])) {
        ++pos_;
      }
      HtmlAttribute attr;
      attr.name = AsciiToLower(doc_.substr(name_start, pos_ - name_start));
      while (pos_ < doc_.size() && IsAsciiSpace(doc_[pos_])) ++pos_;
      if (pos_ < doc_.size() && doc_[pos_] == '=') {
        ++pos_;
        while (pos_ < doc_.size() && IsAsciiSpace(doc_[pos_])) ++pos_;
        if (pos_ < doc_.size() && (doc_[pos_] == '"' || doc_[pos_] == '\'')) {
          char quote = doc_[pos_++];
          size_t value_start = pos_;
          // Look for the closing quote only within the attribute-value
          // window; an unterminated quote must not swallow the rest of
          // the document into one attribute.
          size_t window = doc_.size() - value_start;
          if (limits_.max_attribute_value_bytes != 0 &&
              window > limits_.max_attribute_value_bytes) {
            window = limits_.max_attribute_value_bytes;
          }
          size_t rel = doc_.substr(value_start, window).find(quote);
          if (rel != std::string_view::npos) {
            attr.value = std::string(doc_.substr(value_start, rel));
            pos_ = value_start + rel + 1;  // past the closing quote
          } else {
            // Recovery: no closing quote in the window. Rewind and re-lex
            // the region as an unquoted value, so lexing resynchronizes at
            // the next space or '>' instead of at end of input.
            obs::Robust().lexer_recoveries->Increment();
            pos_ = value_start;
            LexUnquotedValue(&attr);
          }
        } else {
          LexUnquotedValue(&attr);
        }
      }
      if (attr.name.empty()) continue;
      if (LimitExceeded(token->attrs.size() + 1,
                        limits_.max_attributes_per_tag)) {
        // Recoverable cap: parse (to keep positions in sync) but drop.
        if (!attrs_tripped) {
          attrs_tripped = true;
          obs::Robust().trip_attrs->Increment();
        }
        continue;
      }
      token->attrs.push_back(std::move(attr));
    }
  }

  // Scans a bare attribute value (up to the next space or '>'), storing at
  // most max_attribute_value_bytes of it.
  void LexUnquotedValue(HtmlAttribute* attr) {
    size_t value_start = pos_;
    while (pos_ < doc_.size() && doc_[pos_] != '>' &&
           !IsAsciiSpace(doc_[pos_])) {
      ++pos_;
    }
    size_t length = pos_ - value_start;
    if (LimitExceeded(length, limits_.max_attribute_value_bytes)) {
      obs::Robust().trip_attr_value->Increment();
      length = limits_.max_attribute_value_bytes;
    }
    attr->value = std::string(doc_.substr(value_start, length));
  }

  // <!-- comment --> or <!DOCTYPE ...> or any other <!...> declaration.
  void LexDeclaration() {
    size_t start = pos_;
    HtmlToken& token = tokens_.emplace_back();
    token.kind = HtmlToken::Kind::kComment;
    token.begin = start;
    if (doc_.compare(pos_, 4, "<!--") == 0) {
      size_t close = doc_.find("-->", pos_ + 4);
      pos_ = close == std::string_view::npos ? doc_.size() : close + 3;
    } else {
      size_t close = doc_.find('>', pos_);
      pos_ = close == std::string_view::npos ? doc_.size() : close + 1;
    }
    token.end = pos_;
  }

  // <? ... > (or <? ... ?>).
  void LexProcessing() {
    HtmlToken& token = tokens_.emplace_back();
    token.kind = HtmlToken::Kind::kProcessing;
    token.begin = pos_;
    size_t close = doc_.find('>', pos_);
    pos_ = close == std::string_view::npos ? doc_.size() : close + 1;
    token.end = pos_;
  }

  // Consumes raw text up to (not including) the matching </name ...>.
  // Takes the tag name BY VALUE: the body appends to tokens_, which can
  // reallocate and would dangle a reference into tokens_.back().name.
  void LexRawText(std::string name) {
    size_t body_start = pos_;
    size_t scan = pos_;
    size_t body_end = doc_.size();
    std::string needle = "</" + name;
    while (scan < doc_.size()) {
      size_t candidate = doc_.find('<', scan);
      if (candidate == std::string_view::npos) break;
      if (candidate + needle.size() <= doc_.size() &&
          AsciiEqualsIgnoreCase(doc_.substr(candidate, needle.size()),
                                needle)) {
        char after = candidate + needle.size() < doc_.size()
                         ? doc_[candidate + needle.size()]
                         : '>';
        if (after == '>' || IsAsciiSpace(after)) {
          body_end = candidate;
          break;
        }
      }
      scan = candidate + 1;
    }
    if (body_end > body_start) {
      HtmlToken& token = tokens_.emplace_back();
      token.kind = HtmlToken::Kind::kText;
      token.begin = body_start;
      token.end = body_end;
      token.text.assign(doc_.substr(body_start, body_end - body_start));
    }
    pos_ = body_end;
  }

  // Accumulates text up to the next '<'.
  void LexTextRun() {
    if (text_start_ == std::string_view::npos) text_start_ = pos_;
    size_t next = doc_.find('<', pos_ + (doc_[pos_] == '<' ? 1 : 0));
    pos_ = next == std::string_view::npos ? doc_.size() : next;
    // Note: when the '<' at pos_ turns out not to start a tag, the main
    // loop calls back into LexTextRun and we continue the same run.
  }

  void FlushText() {
    if (text_start_ == std::string_view::npos) return;
    size_t end = pos_;
    if (end > text_start_) {
      HtmlToken& token = tokens_.emplace_back();
      token.kind = HtmlToken::Kind::kText;
      token.begin = text_start_;
      token.end = end;
      token.text.assign(doc_.substr(text_start_, end - text_start_));
    }
    text_start_ = std::string_view::npos;
  }

  std::string_view doc_;
  const DocumentLimits limits_;
  size_t pos_ = 0;
  size_t text_start_ = std::string_view::npos;
  std::vector<HtmlToken> tokens_;
};

}  // namespace

Result<std::vector<HtmlToken>> LexHtml(std::string_view document,
                                       const robust::DocumentLimits& limits) {
  obs::ScopedTimer timer(obs::Stages().lex);
  Lexer lexer(document, limits);
  return lexer.Lex();
}

Result<std::vector<HtmlToken>> LexHtml(std::string_view document) {
  return LexHtml(document, robust::DocumentLimits::Production());
}

}  // namespace webrbd
