#!/usr/bin/env python3
# Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
"""Condenses google-benchmark JSON into the repo-root BENCH_throughput.json.

Reads any number of --benchmark_out JSON files (bench_components.json,
bench_throughput.json) and emits one small machine-readable summary with
the headline MB/s numbers the README and CI artifacts track:

    lexer / lexer_legacy       BM_Lexer vs the frozen pre-SWAR baseline
    tree_build / tree_legacy   BM_TagTreeBuild vs the frozen pre-arena one
    batch_pipeline             best BM_BatchPipeline/<threads>/<docs> run
    template_skew              BM_BatchPipelineTemplateSkew cache-on vs
                               cache-off: hit rate and memoization speedup
    store_*                    bench_store: ingest MB/s (memory and POSIX
                               backends) and 1M-record query latencies,
                               with the learned-index speedup over a full
                               scan (CI floors this at 5x)

Each section is included only when its benchmarks are present in the
inputs, so partial runs still summarize. Repeated runs of one benchmark
(--benchmark_repetitions) are collapsed to the best repetition — the
noise-robust aggregate on a shared machine. Usage:

    tools/bench_summary.py --out BENCH_throughput.json a.json b.json
"""

import argparse
import json
import re
import sys


def load_benchmarks(paths):
    """(name -> best repetition of that name, last serve_load section).

    Inputs are google-benchmark JSON files plus, optionally, the
    bench/bench_serve_load.py output (recognized by its "serve_load" key).
    """
    runs = {}
    serve_load = None
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        if "serve_load" in data:
            serve_load = data["serve_load"]
        for bench in data.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            name = bench["name"]
            best = runs.get(name)
            if best is None or (bench.get("bytes_per_second", 0)
                                > best.get("bytes_per_second", 0)):
                runs[name] = bench
    return runs, serve_load


def mb_per_second(bench):
    return round(bench["bytes_per_second"] / 1e6, 1)


def real_seconds(bench):
    unit = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
    return bench["real_time"] * unit.get(bench.get("time_unit", "ns"), 1e-9)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True, help="summary JSON path")
    parser.add_argument("inputs", nargs="+", help="benchmark JSON files")
    args = parser.parse_args()

    runs, serve_load = load_benchmarks(args.inputs)
    summary = {}

    # Serving-path section: the daemon load run's headline numbers (see
    # bench/bench_serve_load.py for the assertions behind them).
    if serve_load:
        summary["serve_requests"] = serve_load.get("served", 0)
        summary["serve_dropped"] = serve_load.get("dropped", 0)
        summary["serve_throughput_rps"] = serve_load.get("throughput_rps",
                                                         0.0)
        summary["serve_p50_ms"] = serve_load.get("p50_ms", 0.0)
        summary["serve_p99_ms"] = serve_load.get("p99_ms", 0.0)
        summary["serve_concurrency"] = serve_load.get("concurrency", 0)

    pairs = [
        ("lexer", "BM_Lexer", "lexer_legacy", "BM_LexerLegacy"),
        ("tree_build", "BM_TagTreeBuild",
         "tree_build_legacy", "BM_TagTreeBuildLegacy"),
    ]
    for fast_key, fast_name, legacy_key, legacy_name in pairs:
        if fast_name in runs:
            summary[fast_key + "_mb_s"] = mb_per_second(runs[fast_name])
        if legacy_name in runs:
            summary[legacy_key + "_mb_s"] = mb_per_second(runs[legacy_name])
        if fast_name in runs and legacy_name in runs:
            summary[fast_key + "_speedup"] = round(
                runs[fast_name]["bytes_per_second"]
                / runs[legacy_name]["bytes_per_second"], 2)

    batch = [b for name, b in runs.items()
             if name.startswith("BM_BatchPipeline/")]
    if batch:
        best = max(batch, key=lambda b: b["bytes_per_second"])
        summary["batch_pipeline_mb_s"] = mb_per_second(best)
        summary["batch_pipeline_best_config"] = best["name"]

    # Template-memoization section: pair cache:1 against cache:0 at the
    # same thread count and report the throughput ratio (best-rep over
    # best-rep) plus the cache-on run's converged hit rate.
    skew = {}
    for name, bench in runs.items():
        match = re.match(
            r"BM_BatchPipelineTemplateSkew/threads:(\d+)/docs:(\d+)"
            r"/cache:([01])", name)
        if match:
            threads, docs, cache = (int(g) for g in match.groups())
            skew[(threads, docs, cache)] = bench
    best_pair = None
    for (threads, docs, cache), on in skew.items():
        if cache != 1 or (threads, docs, 0) not in skew:
            continue
        off = skew[(threads, docs, 0)]
        speedup = round(on["bytes_per_second"] / off["bytes_per_second"], 2)
        summary[f"template_skew_speedup_{threads}t"] = speedup
        if best_pair is None or speedup > best_pair[0]:
            best_pair = (speedup, on)
    if best_pair:
        speedup, on = best_pair
        summary["template_skew_speedup"] = speedup
        summary["template_skew_hit_rate"] = round(on["hit_rate"], 4)
        summary["template_skew_mb_s"] = mb_per_second(on)

    # Persistent-store section (bench/bench_store.cc): best ingest rep per
    # backend, query latencies against the sealed 1M-record store, and the
    # learned-index speedup over the scan-from-zero baseline.
    for key, prefix in [("store_ingest_mb_s", "BM_StoreIngest/"),
                        ("store_ingest_posix_mb_s", "BM_StoreIngestPosix/")]:
        ingest = [b for name, b in runs.items() if name.startswith(prefix)
                  and "/" not in name[len(prefix):]]
        if ingest:
            summary[key] = mb_per_second(
                max(ingest, key=lambda b: b["bytes_per_second"]))
    if "BM_StoreRangeQueryLearned" in runs:
        learned = runs["BM_StoreRangeQueryLearned"]
        summary["store_range_query_us"] = round(real_seconds(learned) * 1e6,
                                                1)
        if "index_segments" in learned:
            summary["store_index_segments"] = int(learned["index_segments"])
    if "BM_StorePointQueryLearned" in runs:
        summary["store_point_query_us"] = round(
            real_seconds(runs["BM_StorePointQueryLearned"]) * 1e6, 1)
    if "BM_StoreRangeQueryFullScan" in runs:
        full = runs["BM_StoreRangeQueryFullScan"]
        summary["store_full_scan_ms"] = round(real_seconds(full) * 1e3, 2)
        if "BM_StoreRangeQueryLearned" in runs:
            summary["store_index_speedup"] = round(
                real_seconds(full)
                / real_seconds(runs["BM_StoreRangeQueryLearned"]), 1)

    if not summary:
        print("bench_summary: no recognized benchmarks in inputs",
              file=sys.stderr)
        return 1

    with open(args.out, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_summary: wrote {args.out}: "
          f"{json.dumps(summary, sort_keys=True)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
