#!/usr/bin/env python3
# Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
"""Condenses google-benchmark JSON into the repo-root BENCH_throughput.json.

Reads any number of --benchmark_out JSON files (bench_components.json,
bench_throughput.json) and emits one small machine-readable summary with
the headline MB/s numbers the README and CI artifacts track:

    lexer / lexer_legacy       BM_Lexer vs the frozen pre-SWAR baseline
    tree_build / tree_legacy   BM_TagTreeBuild vs the frozen pre-arena one
    batch_pipeline             best BM_BatchPipeline/<threads>/<docs> run

Each section is included only when its benchmarks are present in the
inputs, so partial runs still summarize. Usage:

    tools/bench_summary.py --out BENCH_throughput.json a.json b.json
"""

import argparse
import json
import sys


def load_benchmarks(paths):
    runs = {}
    for path in paths:
        with open(path) as f:
            data = json.load(f)
        for bench in data.get("benchmarks", []):
            if bench.get("run_type") == "aggregate":
                continue
            runs[bench["name"]] = bench
    return runs


def mb_per_second(bench):
    return round(bench["bytes_per_second"] / 1e6, 1)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True, help="summary JSON path")
    parser.add_argument("inputs", nargs="+", help="benchmark JSON files")
    args = parser.parse_args()

    runs = load_benchmarks(args.inputs)
    summary = {}

    pairs = [
        ("lexer", "BM_Lexer", "lexer_legacy", "BM_LexerLegacy"),
        ("tree_build", "BM_TagTreeBuild",
         "tree_build_legacy", "BM_TagTreeBuildLegacy"),
    ]
    for fast_key, fast_name, legacy_key, legacy_name in pairs:
        if fast_name in runs:
            summary[fast_key + "_mb_s"] = mb_per_second(runs[fast_name])
        if legacy_name in runs:
            summary[legacy_key + "_mb_s"] = mb_per_second(runs[legacy_name])
        if fast_name in runs and legacy_name in runs:
            summary[fast_key + "_speedup"] = round(
                runs[fast_name]["bytes_per_second"]
                / runs[legacy_name]["bytes_per_second"], 2)

    batch = [b for name, b in runs.items()
             if name.startswith("BM_BatchPipeline/")]
    if batch:
        best = max(batch, key=lambda b: b["bytes_per_second"])
        summary["batch_pipeline_mb_s"] = mb_per_second(best)
        summary["batch_pipeline_best_config"] = best["name"]

    if not summary:
        print("bench_summary: no recognized benchmarks in inputs",
              file=sys.stderr)
        return 1

    with open(args.out, "w") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"bench_summary: wrote {args.out}: "
          f"{json.dumps(summary, sort_keys=True)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
