# Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
#
# ctest script: the degradation contract, end to end through the CLI. A
# batch mixing benign and adversarial documents under the default limits
# must finish (no crash, no hang), report the depth bomb as a per-document
# ResourceExhausted failure, keep every benign document succeeding, and
# surface nonzero robust.* counters in the metrics snapshot.
#
# Expects: -DWEBRBD_CLI=<path to webrbd_cli> -DOUT_DIR=<writable dir>

set(json_file ${OUT_DIR}/adversarial_metrics.json)
execute_process(
    COMMAND ${WEBRBD_CLI} batch --generate 4 --generate-adversarial 9
            --threads 2 --metrics-out ${json_file}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)

# The depth bomb fails per-document, so the batch exits nonzero — but it
# must be a clean failure report, not a crash (signals exit > 128 or with
# a message-less rc string like "Segmentation fault").
if(rc EQUAL 0)
  message(FATAL_ERROR "adversarial batch reported no failures (expected the "
                      "depth bomb to trip max_tree_depth)")
endif()
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "adversarial batch exited with '${rc}' (crash?); "
                      "stderr:\n${err}")
endif()

string(FIND "${err}${out}" "ResourceExhausted" found)
if(found EQUAL -1)
  message(FATAL_ERROR "adversarial batch did not report a ResourceExhausted "
                      "document; stderr:\n${err}")
endif()
string(FIND "${err}${out}" "depth-bomb" found)
if(found EQUAL -1)
  message(FATAL_ERROR "the failing document was not the depth bomb; "
                      "stderr:\n${err}")
endif()

# Exactly one adversarial shape trips a fatal cap at the default scales;
# the rest degrade and recover. Counters must say so.
file(READ ${json_file} json)
string(FIND "${json}" "\"webrbd_robust_limit_trips_depth_total\": 0" zero)
if(NOT zero EQUAL -1)
  message(FATAL_ERROR "depth-trip counter is zero after a depth bomb")
endif()
string(FIND "${json}" "\"webrbd_robust_lexer_recoveries_total\": 0" zero)
if(NOT zero EQUAL -1)
  message(FATAL_ERROR "lexer-recovery counter is zero after malformed docs")
endif()
foreach(metric
        webrbd_robust_limit_trips_depth_total
        webrbd_robust_lexer_recoveries_total
        webrbd_robust_limit_trips_attr_value_total)
  string(FIND "${json}" "\"${metric}\"" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "metrics JSON is missing ${metric}")
  endif()
endforeach()

# Unlimited mode must not resource-reject anything: the depth bomb is
# processed in full and fails only because a million-tag chain has no
# records to discover — a clean per-document failure, exit exactly 1.
execute_process(
    COMMAND ${WEBRBD_CLI} batch --generate-adversarial 1 --threads 1
            --unlimited
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 1)
  message(FATAL_ERROR "unlimited depth-bomb run exited with '${rc}' "
                      "(crash?); stderr:\n${err}")
endif()
string(FIND "${err}${out}" "ResourceExhausted" found)
if(NOT found EQUAL -1)
  message(FATAL_ERROR "--unlimited still tripped a limit:\n${err}")
endif()
