# Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
#
# ctest script: the persistent-store round trip ACROSS PROCESSES. One
# `webrbd_cli store` run ingests a generated corpus into a POSIX store
# file; fresh `webrbd_cli query` processes must reopen it and answer
# count, range, filter, and JSON queries; a truncated (torn) final page
# must be recovered, not refused; and the store run's --metrics-out
# snapshot must show the webrbd_store_* counters moving.
#
# Expects: -DWEBRBD_CLI=<path to webrbd_cli> -DOUT_DIR=<writable dir>
#          (python3 on PATH, same as serve_load_smoke)

set(store_file ${OUT_DIR}/roundtrip.store)
set(metrics_file ${OUT_DIR}/roundtrip_store_metrics.json)
file(REMOVE ${store_file})

# --- ingest -----------------------------------------------------------
execute_process(
    COMMAND ${WEBRBD_CLI} store --out ${store_file} --generate 20
            --threads 2 --page-bytes 512 --metrics-out ${metrics_file}
    OUTPUT_VARIABLE store_out
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "webrbd_cli store exited with ${rc}")
endif()
string(REGEX MATCH "stored ([0-9]+) record" _ "${store_out}")
if(NOT CMAKE_MATCH_1 OR CMAKE_MATCH_1 EQUAL 0)
  message(FATAL_ERROR "store reported no records: ${store_out}")
endif()
set(stored ${CMAKE_MATCH_1})

file(READ ${metrics_file} metrics)
foreach(metric webrbd_store_records_written_total
        webrbd_store_pages_written_total webrbd_store_flushes_total)
  string(FIND "${metrics}" "\"${metric}\"" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "store metrics snapshot is missing ${metric}")
  endif()
  string(FIND "${metrics}" "\"${metric}\": 0" zero)
  if(NOT zero EQUAL -1)
    message(FATAL_ERROR "${metric} did not move during the store run")
  endif()
endforeach()

# --- fresh-process queries --------------------------------------------
execute_process(
    COMMAND ${WEBRBD_CLI} query --store ${store_file} --count
    OUTPUT_VARIABLE count_out
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "webrbd_cli query --count exited with ${rc}")
endif()
string(STRIP "${count_out}" count_out)
if(NOT count_out STREQUAL "${stored}")
  message(FATAL_ERROR
          "query --count saw ${count_out} records, store wrote ${stored}")
endif()

execute_process(
    COMMAND ${WEBRBD_CLI} query --store ${store_file} --min-key 3 --max-key 5
    OUTPUT_VARIABLE range_out
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "range query exited with ${rc}")
endif()
string(REGEX MATCHALL "key=[0-9]+" range_keys "${range_out}")
list(LENGTH range_keys range_count)
if(NOT range_count EQUAL 3)
  message(FATAL_ERROR "range [3,5] returned ${range_count} records, want 3")
endif()
string(FIND "${range_out}" "key=3 " found)
if(found EQUAL -1)
  message(FATAL_ERROR "range [3,5] is missing key=3: ${range_out}")
endif()

# JSON rendering: one object per record, keys present.
execute_process(
    COMMAND ${WEBRBD_CLI} query --store ${store_file} --min-key 0 --max-key 0
            --format json
    OUTPUT_VARIABLE json_out
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "json query exited with ${rc}")
endif()
string(FIND "${json_out}" "\"key\":0" found)
if(found EQUAL -1)
  message(FATAL_ERROR "json query output lacks the key field: ${json_out}")
endif()

# A filter that matches nothing must report exactly zero.
execute_process(
    COMMAND ${WEBRBD_CLI} query --store ${store_file}
            --entity NoSuchEntity --count
    OUTPUT_VARIABLE none_out
    RESULT_VARIABLE rc)
string(STRIP "${none_out}" none_out)
if(NOT rc EQUAL 0 OR NOT none_out STREQUAL "0")
  message(FATAL_ERROR "entity-filter miss returned '${none_out}' (rc ${rc})")
endif()

# --- strict flag validation -------------------------------------------
execute_process(
    COMMAND ${WEBRBD_CLI} query --store ${store_file} --generate 5
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "query accepted the store-only flag --generate")
endif()
execute_process(
    COMMAND ${WEBRBD_CLI} store --generate 5
    RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "store without --out must be a usage error")
endif()

# --- torn-tail recovery ------------------------------------------------
execute_process(
    COMMAND python3 -c "import sys
f = open(sys.argv[1], 'r+b')
f.seek(0, 2)
f.truncate(f.tell() - 100)"
            ${store_file}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "could not tear the store file (rc ${rc})")
endif()
execute_process(
    COMMAND ${WEBRBD_CLI} query --store ${store_file} --count
    OUTPUT_VARIABLE torn_count
    ERROR_VARIABLE torn_err
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "query on a torn store exited with ${rc}: ${torn_err}")
endif()
string(FIND "${torn_err}" "recovered: dropped 1 torn page(s)" found)
if(found EQUAL -1)
  message(FATAL_ERROR "torn store did not report recovery: ${torn_err}")
endif()
string(STRIP "${torn_count}" torn_count)
if(torn_count GREATER_EQUAL ${stored} OR torn_count EQUAL 0)
  message(FATAL_ERROR
          "torn store has ${torn_count} records, expected a non-empty "
          "prefix of ${stored}")
endif()
