// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// webrbd command-line tool: record-boundary discovery, record extraction,
// database population, and document classification over HTML files.
//
//   webrbd_cli discover [options] FILE        show the separator consensus
//   webrbd_cli extract  [options] FILE        print the records
//   webrbd_cli populate [options] FILE        run the full pipeline
//   webrbd_cli classify [options] FILE        multi-record / detail / none
//   webrbd_cli batch    [options] DIR         batch pipeline over *.html in DIR
//   webrbd_cli store    --out F [options] DIR  persist extracted records into
//                                             a page-based record store
//   webrbd_cli query    --store F [options]   key-range scan over a store file
//   webrbd_cli demo                           run the paper's Figure 2
//
// Options:
//   --heuristics LETTERS   subset of ORSIH (default ORSIH)
//   --threshold FRACTION   candidate irrelevance threshold (default 0.10)
//   --ontology FILE        ontology DSL enabling OM and field extraction
//   --format FORMAT        extract: text|json   populate: table|csv|sql
//   --keep-leading         keep the chunk before the first separator
//   --threads N            batch: worker threads (default: all cores)
//   --chunk-size N         batch: documents per pool task (default: auto,
//                          ~4 tasks per worker; each task reuses one warm
//                          document arena across its chunk)
//   --generate N           batch: run over N generated obituary documents
//                          instead of a directory (no --ontology needed)
//   --generate-adversarial N  batch: append N deterministic adversarial
//                          documents (src/gen/adversarial.h) to the corpus;
//                          they must degrade per-document, never crash
//   --out FILE             store: the record-store file to create/append
//   --page-bytes N         store: page size for a NEW store file
//   --store FILE           query: the record-store file to scan
//   --min-key N            query: first ingest key of the range (inclusive)
//   --max-key N            query: last ingest key of the range (inclusive)
//   --entity NAME          query: keep only records of this entity table
//   --count                query: print only the number of matches
//   --max-doc-bytes N      override the document-size cap (0 = unlimited)
//   --max-depth N          override the tree-depth cap (0 = unlimited)
//   --unlimited            disable every per-document resource cap
//                          (see docs/robustness.md for the limit catalog)
//   --metrics-out FILE     enable pipeline metrics and write a snapshot to
//                          FILE after the command ("-" for stdout; a .prom
//                          suffix selects Prometheus text format, anything
//                          else gets JSON). See docs/observability.md.
//
// FILE may be "-" for stdin.

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/document_classifier.h"
#include "core/record_extractor.h"
#include "db/export.h"
#include "eval/figure2.h"
#include "extract/extraction_context.h"
#include "extract/db_instance_generator.h"
#include "extract/record_sink.h"
#include "gen/adversarial.h"
#include "gen/sites.h"
#include "obs/metrics.h"
#include "obs/stages.h"
#include "ontology/bundled.h"
#include "ontology/estimator.h"
#include "ontology/parser.h"
#include "robust/limits.h"
#include "serve/json_util.h"
#include "store/file_interface.h"
#include "store/record_store.h"

namespace webrbd {
namespace {

struct CliOptions {
  std::string command;
  std::string file;
  std::string heuristics = "ORSIH";
  double threshold = 0.10;
  std::string ontology_file;
  std::string format;
  bool keep_leading = false;
  int threads = 0;
  long long chunk_size = 0;
  int generate = 0;
  int generate_adversarial = 0;
  // batch: also write the assembled corpus to this directory as
  // doc_NNNN.html (how bench/bench_serve_load.py obtains real extractable
  // documents to POST at the daemon).
  std::string dump_corpus_dir;
  std::string metrics_out;
  // Snapshot format for --metrics-out; unset = infer from the extension.
  std::optional<obs::SnapshotFormat> metrics_format;
  // Resource-limit overrides; -1 = keep the mode's default for that cap.
  long long max_doc_bytes = -1;
  long long max_depth = -1;
  bool unlimited = false;
  // store/query: the record-store file (--out for store, --store for
  // query; separate flags because store CREATES and query must not).
  std::string store_path;
  long long store_page_bytes = -1;  // -1 = store default (new files only)
  long long min_key = -1;           // query: -1 = from the first record
  long long max_key = -1;           // query: -1 = through the last record
  std::string entity_filter;        // query: keep only this entity
  bool count_only = false;          // query: print only the match count
  // Every flag the command line named, for per-command strict validation.
  std::vector<std::string> seen_flags;
};

// The effective per-document limits: production defaults (or none, under
// --unlimited), with any explicit per-cap overrides applied on top.
robust::DocumentLimits LimitsFromCli(const CliOptions& cli) {
  robust::DocumentLimits limits = cli.unlimited
                                      ? robust::DocumentLimits::Unlimited()
                                      : robust::DocumentLimits::Production();
  if (cli.max_doc_bytes >= 0) {
    limits.max_document_bytes = static_cast<size_t>(cli.max_doc_bytes);
  }
  if (cli.max_depth >= 0) {
    limits.max_tree_depth = static_cast<size_t>(cli.max_depth);
  }
  return limits;
}

// Strict parsing for integer-valued flags: the whole value must be one
// non-negative decimal integer within [0, max_value]. The previous
// strtol(v, nullptr, 10) calls silently turned "--threads abc" into 0 and
// ignored trailing garbage ("--generate 10x"); every such input is a
// usage error now.
bool ParseCount(const char* flag, const char* v, long long max_value,
                long long* out) {
  if (v == nullptr || *v == '\0') {
    std::fprintf(stderr, "%s: missing value\n", flag);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v || *end != '\0') {
    std::fprintf(stderr, "%s: expected a decimal integer, got \"%s\"\n", flag,
                 v);
    return false;
  }
  if (errno == ERANGE || parsed < 0 || parsed > max_value) {
    std::fprintf(stderr, "%s: value out of range [0, %lld]: \"%s\"\n", flag,
                 max_value, v);
    return false;
  }
  *out = parsed;
  return true;
}

// Same discipline for fractional flags (--threshold): full-string parse,
// finite, non-negative.
bool ParseFraction(const char* flag, const char* v, double* out) {
  if (v == nullptr || *v == '\0') {
    std::fprintf(stderr, "%s: missing value\n", flag);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  if (end == v || *end != '\0' || errno == ERANGE || !(parsed >= 0.0)) {
    std::fprintf(stderr, "%s: expected a non-negative number, got \"%s\"\n",
                 flag, v);
    return false;
  }
  *out = parsed;
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: webrbd_cli COMMAND [options] FILE\n"
      "commands: discover | extract | populate | classify | batch | store |\n"
      "          query | demo\n"
      "options:  --heuristics LETTERS  --threshold FRACTION\n"
      "          --ontology FILE  --format FORMAT  --keep-leading\n"
      "          --threads N  --chunk-size N  --generate N\n"
      "          --generate-adversarial N  --dump-corpus DIR  (batch/store)\n"
      "          --out FILE  --page-bytes N  (store)\n"
      "          --store FILE  --min-key N  --max-key N  --entity NAME\n"
      "          --count  (query)\n"
      "          --max-doc-bytes N  --max-depth N  --unlimited\n"
      "          --metrics-out FILE  (any command; .prom = Prometheus text)\n"
      "          --metrics-format json|prom  (overrides the extension rule;\n"
      "            the only way to pick a format for --metrics-out -)\n");
  return 2;
}

bool ParseArgs(int argc, char** argv, CliOptions* options) {
  if (argc < 2) return false;
  options->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (!arg.empty() && arg[0] == '-' && arg != "-") {
      options->seen_flags.push_back(arg);
    }
    if (arg == "--heuristics") {
      const char* v = next();
      if (v == nullptr) return false;
      options->heuristics = v;
    } else if (arg == "--threshold") {
      if (!ParseFraction("--threshold", next(), &options->threshold)) {
        return false;
      }
    } else if (arg == "--ontology") {
      const char* v = next();
      if (v == nullptr) return false;
      options->ontology_file = v;
    } else if (arg == "--format") {
      const char* v = next();
      if (v == nullptr) return false;
      options->format = v;
    } else if (arg == "--keep-leading") {
      options->keep_leading = true;
    } else if (arg == "--threads") {
      long long threads = 0;
      if (!ParseCount("--threads", next(), INT_MAX, &threads)) return false;
      options->threads = static_cast<int>(threads);
    } else if (arg == "--chunk-size") {
      if (!ParseCount("--chunk-size", next(), LLONG_MAX,
                      &options->chunk_size)) {
        return false;
      }
    } else if (arg == "--generate") {
      long long n = 0;
      if (!ParseCount("--generate", next(), INT_MAX, &n)) return false;
      options->generate = static_cast<int>(n);
    } else if (arg == "--generate-adversarial") {
      long long n = 0;
      if (!ParseCount("--generate-adversarial", next(), INT_MAX, &n)) {
        return false;
      }
      options->generate_adversarial = static_cast<int>(n);
    } else if (arg == "--dump-corpus") {
      const char* v = next();
      if (v == nullptr) return false;
      options->dump_corpus_dir = v;
    } else if (arg == "--max-doc-bytes") {
      // -1 stays the internal "keep the mode's default" sentinel; the user
      // can only set values >= 0 (0 = unlimited).
      if (!ParseCount("--max-doc-bytes", next(), LLONG_MAX,
                      &options->max_doc_bytes)) {
        return false;
      }
    } else if (arg == "--max-depth") {
      if (!ParseCount("--max-depth", next(), LLONG_MAX, &options->max_depth)) {
        return false;
      }
    } else if (arg == "--unlimited") {
      options->unlimited = true;
    } else if (arg == "--out" || arg == "--store") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "%s: missing value\n", arg.c_str());
        return false;
      }
      options->store_path = v;
    } else if (arg == "--page-bytes") {
      if (!ParseCount("--page-bytes", next(), LLONG_MAX,
                      &options->store_page_bytes)) {
        return false;
      }
    } else if (arg == "--min-key") {
      if (!ParseCount("--min-key", next(), LLONG_MAX, &options->min_key)) {
        return false;
      }
    } else if (arg == "--max-key") {
      if (!ParseCount("--max-key", next(), LLONG_MAX, &options->max_key)) {
        return false;
      }
    } else if (arg == "--entity") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "--entity: missing value\n");
        return false;
      }
      options->entity_filter = v;
    } else if (arg == "--count") {
      options->count_only = true;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return false;
      options->metrics_out = v;
    } else if (arg == "--metrics-format") {
      const char* v = next();
      if (v == nullptr) return false;
      obs::SnapshotFormat format;
      if (!obs::ParseSnapshotFormat(v, &format)) {
        std::fprintf(stderr,
                     "--metrics-format: expected json or prom, got \"%s\"\n",
                     v);
        return false;
      }
      options->metrics_format = format;
    } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    } else {
      options->file = arg;
    }
  }
  return true;
}

Result<std::string> ReadInput(const std::string& file) {
  if (file == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    return buffer.str();
  }
  std::ifstream in(file, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + file);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

// Builds discovery options (and, when an ontology is given, the OM
// estimator) from the CLI flags.
Result<StandaloneDiscoveryOptions> MakeDiscoveryOptions(
    const CliOptions& cli, std::optional<Ontology>* ontology_out) {
  StandaloneDiscoveryOptions options;
  options.heuristics = cli.heuristics;
  options.candidate_options.irrelevance_threshold = cli.threshold;
  options.limits = LimitsFromCli(cli);
  if (!cli.ontology_file.empty()) {
    auto text = ReadInput(cli.ontology_file);
    if (!text.ok()) return text.status();
    auto ontology = ParseOntology(*text);
    if (!ontology.ok()) return ontology.status();
    auto estimator = MakeEstimatorForOntology(*ontology);
    if (!estimator.ok()) return estimator.status();
    options.estimator = std::move(estimator).value();
    if (ontology_out != nullptr) *ontology_out = std::move(ontology).value();
  }
  return options;
}

int RunDiscover(const CliOptions& cli) {
  auto html = ReadInput(cli.file);
  if (!html.ok()) {
    std::fprintf(stderr, "%s\n", html.status().ToString().c_str());
    return 1;
  }
  std::optional<Ontology> ontology;
  auto options = MakeDiscoveryOptions(cli, &ontology);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return 1;
  }
  auto discovery = DiscoverRecordBoundaries(*html, *options);
  if (!discovery.ok()) {
    std::fprintf(stderr, "%s\n", discovery.status().ToString().c_str());
    return 1;
  }
  const DiscoveryResult& result = discovery->result;
  std::printf("separator: <%s>\n", result.separator.c_str());
  std::printf("region: <%s> fan-out %zu\n",
              std::string(result.analysis.subtree->name).c_str(),
              result.analysis.subtree->fanout());
  std::printf("compound ranking:\n");
  for (const CompoundRankedTag& ranked : result.compound_ranking) {
    std::printf("  <%s>  %.2f%%\n", ranked.tag.c_str(),
                100.0 * ranked.certainty);
  }
  std::printf("individual heuristics:\n");
  for (const HeuristicResult& heuristic : result.heuristic_results) {
    std::printf("  %s:", heuristic.heuristic_name.c_str());
    if (heuristic.ranking.empty()) std::printf(" (no answer)");
    for (const RankedTag& ranked : heuristic.ranking) {
      std::printf(" %s=%d", ranked.tag.c_str(), ranked.rank);
    }
    std::printf("\n");
  }
  return 0;
}

int RunExtract(const CliOptions& cli) {
  auto html = ReadInput(cli.file);
  if (!html.ok()) {
    std::fprintf(stderr, "%s\n", html.status().ToString().c_str());
    return 1;
  }
  auto options = MakeDiscoveryOptions(cli, nullptr);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return 1;
  }
  RecordExtractorOptions extractor_options;
  extractor_options.drop_leading_chunk = !cli.keep_leading;
  auto records =
      ExtractRecordsFromDocument(*html, *options, extractor_options);
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.status().ToString().c_str());
    return 1;
  }
  if (cli.format == "json") {
    std::printf("[\n");
    for (size_t i = 0; i < records->size(); ++i) {
      std::printf("  {\"index\": %zu, \"begin\": %zu, \"end\": %zu, "
                  "\"text\": \"%s\"}%s\n",
                  i, (*records)[i].begin, (*records)[i].end,
                  JsonEscape((*records)[i].text).c_str(),
                  i + 1 < records->size() ? "," : "");
    }
    std::printf("]\n");
  } else {
    for (size_t i = 0; i < records->size(); ++i) {
      std::printf("--- record %zu ---\n%s\n", i + 1,
                  (*records)[i].text.c_str());
    }
  }
  return 0;
}

int RunPopulate(const CliOptions& cli) {
  if (cli.ontology_file.empty()) {
    std::fprintf(stderr, "populate requires --ontology FILE\n");
    return 2;
  }
  auto html = ReadInput(cli.file);
  if (!html.ok()) {
    std::fprintf(stderr, "%s\n", html.status().ToString().c_str());
    return 1;
  }
  std::optional<Ontology> ontology;
  auto options = MakeDiscoveryOptions(cli, &ontology);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return 1;
  }
  auto records = ExtractRecordsFromDocument(*html, *options);
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.status().ToString().c_str());
    return 1;
  }
  auto generator = DatabaseInstanceGenerator::Create(*ontology);
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }
  auto catalog = generator->Populate(*records);
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }
  if (cli.format == "csv") {
    for (const std::string& name : catalog->TableNames()) {
      std::printf("-- %s --\n%s\n", name.c_str(),
                  db::ToCsv(*catalog->GetTable(name)).c_str());
    }
  } else if (cli.format == "sql") {
    std::printf("%s", db::ToSqlDump(*catalog).c_str());
  } else {
    std::printf("%s", catalog->ToString().c_str());
  }
  return 0;
}

int RunClassify(const CliOptions& cli) {
  auto html = ReadInput(cli.file);
  if (!html.ok()) {
    std::fprintf(stderr, "%s\n", html.status().ToString().c_str());
    return 1;
  }
  std::optional<Ontology> ontology;
  auto options = MakeDiscoveryOptions(cli, &ontology);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n", options.status().ToString().c_str());
    return 1;
  }
  auto tree = BuildTagTree(*html, options->limits);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  ClassificationResult result =
      ClassifyDocument(*tree, options->estimator.get());
  std::printf("%s (%s)\n", DocumentClassName(result.document_class).c_str(),
              result.rationale.c_str());
  return 0;
}

// Assembles the corpus a corpus-level command (`batch`, `store`) runs
// over: --generate/--generate-adversarial synthesize documents against
// the bundled obituaries ontology; otherwise FILE names a directory of
// .html files and --ontology is required. Returns 0 and fills the out
// parameters, or the exit code to fail with.
int AssembleCorpus(const CliOptions& cli, const char* command,
                   std::vector<std::string>* corpus_out,
                   std::vector<std::string>* names_out,
                   std::optional<Ontology>* ontology_out) {
  std::optional<Ontology>& ontology = *ontology_out;
  std::vector<std::string>& corpus = *corpus_out;
  std::vector<std::string>& names = *names_out;
  if (cli.generate > 0 || cli.generate_adversarial > 0) {
    // Synthetic corpus: obituary listing pages cycled across the Table 1
    // calibration sites, with the bundled obituaries ontology; optionally
    // followed by deterministic adversarial documents that must degrade
    // per-document (kResourceExhausted / recovered), never crash.
    auto bundled = BundledOntology(Domain::kObituaries);
    if (!bundled.ok()) {
      std::fprintf(stderr, "%s\n", bundled.status().ToString().c_str());
      return 1;
    }
    ontology = std::move(bundled).value();
    const auto& sites = gen::CalibrationSites();
    corpus.reserve(
        static_cast<size_t>(cli.generate + cli.generate_adversarial));
    for (int i = 0; i < cli.generate; ++i) {
      const auto& site = sites[static_cast<size_t>(i) % sites.size()];
      corpus.push_back(
          gen::RenderDocument(site, Domain::kObituaries,
                              i / static_cast<int>(sites.size()))
              .html);
      names.push_back("generated:" + std::to_string(i));
    }
    if (cli.generate_adversarial > 0) {
      const auto& shapes = gen::AllAdversarialShapes();
      std::vector<std::string> adversarial = gen::AdversarialCorpus(
          static_cast<size_t>(cli.generate_adversarial));
      for (size_t i = 0; i < adversarial.size(); ++i) {
        corpus.push_back(std::move(adversarial[i]));
        names.push_back(
            "adversarial:" +
            std::string(gen::AdversarialShapeName(shapes[i % shapes.size()])));
      }
    }
  } else {
    if (cli.ontology_file.empty()) {
      std::fprintf(stderr, "%s requires --ontology FILE (or --generate N)\n",
                   command);
      return 2;
    }
    if (cli.file.empty()) {
      std::fprintf(stderr, "%s requires a directory of HTML files\n", command);
      return 2;
    }
    auto text = ReadInput(cli.ontology_file);
    if (!text.ok()) {
      std::fprintf(stderr, "%s\n", text.status().ToString().c_str());
      return 1;
    }
    auto parsed = ParseOntology(*text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    ontology = std::move(parsed).value();

    std::error_code ec;
    std::filesystem::directory_iterator dir(cli.file, ec);
    if (ec) {
      std::fprintf(stderr, "cannot read directory %s: %s\n", cli.file.c_str(),
                   ec.message().c_str());
      return 1;
    }
    for (const auto& entry : dir) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext != ".html" && ext != ".htm") continue;
      names.push_back(entry.path().string());
    }
    std::sort(names.begin(), names.end());
    corpus.reserve(names.size());
    for (const std::string& name : names) {
      auto html = ReadInput(name);
      if (!html.ok()) {
        std::fprintf(stderr, "%s\n", html.status().ToString().c_str());
        return 1;
      }
      corpus.push_back(std::move(html).value());
    }
    if (corpus.empty()) {
      std::fprintf(stderr, "no .html/.htm files in %s\n", cli.file.c_str());
      return 1;
    }
  }

  if (!cli.dump_corpus_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(cli.dump_corpus_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n",
                   cli.dump_corpus_dir.c_str(), ec.message().c_str());
      return 1;
    }
    for (size_t i = 0; i < corpus.size(); ++i) {
      char name[32];
      std::snprintf(name, sizeof(name), "doc_%04zu.html", i);
      const std::filesystem::path path =
          std::filesystem::path(cli.dump_corpus_dir) / name;
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out << corpus[i];
      if (!out.good()) {
        std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
        return 1;
      }
    }
  }
  return 0;
}

// The `batch` subcommand: the batch-extraction engine over a directory of
// HTML files (or --generate N synthetic obituary documents), printing the
// corpus stats table. See docs/performance.md.
int RunBatch(const CliOptions& cli) {
  std::vector<std::string> corpus;
  std::vector<std::string> names;
  std::optional<Ontology> ontology;
  const int assembled = AssembleCorpus(cli, "batch", &corpus, &names,
                                       &ontology);
  if (assembled != 0) return assembled;

  ContextOptions options;
  options.discovery.heuristics = cli.heuristics;
  options.discovery.candidate_options.irrelevance_threshold = cli.threshold;
  options.discovery.limits = LimitsFromCli(cli);
  auto context = ExtractionContext::Create(*ontology, options);
  if (!context.ok()) {
    std::fprintf(stderr, "%s\n", context.status().ToString().c_str());
    return 1;
  }
  BatchRunOptions run;
  run.num_threads = cli.threads;
  run.chunk_size = static_cast<size_t>(cli.chunk_size);
  // Materialize catalogs through the sink so a document whose records fail
  // to populate still counts as failed, matching the historic behavior of
  // the Catalog-returning batch entry point.
  CatalogSink sink(context->instance_generator());
  auto batch = context->ExtractCorpusInto(corpus, sink, run);
  if (!batch.ok()) {
    std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
    return 1;
  }
  size_t populate_failures = 0;
  // Name the failing documents so corpus triage doesn't need a rerun.
  for (size_t i = 0; i < batch->documents.size(); ++i) {
    const std::string& label = i < names.size() ? names[i] : std::to_string(i);
    if (batch->documents[i].ok()) {
      auto catalog = sink.TakeCatalog(static_cast<uint32_t>(i));
      if (!catalog.ok()) {
        ++populate_failures;
        std::fprintf(stderr, "failed %s: %s\n", label.c_str(),
                     catalog.status().ToString().c_str());
      }
      continue;
    }
    std::fprintf(stderr, "failed %s: %s\n", label.c_str(),
                 batch->documents[i].status().ToString().c_str());
  }
  batch->stats.succeeded -= populate_failures;
  batch->stats.failed += populate_failures;
  std::printf("%s", batch->stats.ToString().c_str());
  return batch->stats.failed == 0 ? 0 : 1;
}

// store and query sit next to real data, where a silently ignored flag is
// a likely operator mistake (--max-key on `store` probably meant `query`),
// so unlike the older commands they reject every flag outside their own
// set instead of shrugging it off.
bool ValidateStrictFlags(const CliOptions& cli) {
  static const std::vector<std::string_view> kStoreFlags = {
      "--out", "--page-bytes", "--ontology", "--generate",
      "--generate-adversarial", "--dump-corpus", "--threads", "--chunk-size",
      "--heuristics", "--threshold", "--max-doc-bytes", "--max-depth",
      "--unlimited", "--metrics-out", "--metrics-format"};
  static const std::vector<std::string_view> kQueryFlags = {
      "--store", "--min-key", "--max-key", "--entity", "--count", "--format",
      "--metrics-out", "--metrics-format"};
  const std::vector<std::string_view>* allowed = nullptr;
  if (cli.command == "store") allowed = &kStoreFlags;
  if (cli.command == "query") allowed = &kQueryFlags;
  if (allowed == nullptr) return true;
  bool ok = true;
  for (const std::string& flag : cli.seen_flags) {
    if (std::find(allowed->begin(), allowed->end(), flag) == allowed->end()) {
      std::fprintf(stderr, "%s does not accept %s\n", cli.command.c_str(),
                   flag.c_str());
      ok = false;
    }
  }
  return ok;
}

// The `store` subcommand: run the batch-extraction engine over a corpus
// (same sources as `batch`) and persist every extracted record into a
// page-based record store (docs/storage.md). The engine's end-of-batch
// Flush makes the file durable before the command returns.
int RunStore(const CliOptions& cli) {
  if (!ValidateStrictFlags(cli)) return 2;
  if (cli.store_path.empty()) {
    std::fprintf(stderr, "store requires --out FILE\n");
    return 2;
  }
  if (cli.store_page_bytes >= 0 &&
      (static_cast<size_t>(cli.store_page_bytes) < store::kMinPageSize ||
       static_cast<size_t>(cli.store_page_bytes) > store::kMaxPageSize)) {
    std::fprintf(stderr, "--page-bytes: %lld is outside [%zu, %zu]\n",
                 cli.store_page_bytes, store::kMinPageSize,
                 store::kMaxPageSize);
    return 2;
  }

  std::vector<std::string> corpus;
  std::vector<std::string> names;
  std::optional<Ontology> ontology;
  const int assembled = AssembleCorpus(cli, "store", &corpus, &names,
                                       &ontology);
  if (assembled != 0) return assembled;

  auto backend = store::OpenPosixFile(cli.store_path, /*create=*/true);
  if (!backend.ok()) {
    std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
    return 1;
  }
  store::StoreOptions store_options;
  if (cli.store_page_bytes >= 0) {
    store_options.page_size = static_cast<size_t>(cli.store_page_bytes);
  }
  auto opened =
      store::RecordStore::Open(std::move(backend).value(), store_options);
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    return 1;
  }
  store::RecordStore& record_store = **opened;
  const uint64_t first_key = record_store.record_count();

  ContextOptions options;
  options.discovery.heuristics = cli.heuristics;
  options.discovery.candidate_options.irrelevance_threshold = cli.threshold;
  options.discovery.limits = LimitsFromCli(cli);
  auto context = ExtractionContext::Create(*ontology, options);
  if (!context.ok()) {
    std::fprintf(stderr, "%s\n", context.status().ToString().c_str());
    return 1;
  }
  BatchRunOptions run;
  run.num_threads = cli.threads;
  run.chunk_size = static_cast<size_t>(cli.chunk_size);
  StoreSink sink(&record_store);
  auto batch = context->ExtractCorpusInto(corpus, sink, run);
  if (!batch.ok()) {
    std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < batch->documents.size(); ++i) {
    if (batch->documents[i].ok()) continue;
    const std::string& label = i < names.size() ? names[i] : std::to_string(i);
    std::fprintf(stderr, "failed %s: %s\n", label.c_str(),
                 batch->documents[i].status().ToString().c_str());
  }
  std::printf("%s", batch->stats.ToString().c_str());
  std::printf("stored %llu record(s) in %s (keys %llu..%llu, %llu pages, "
              "%zu index segments)\n",
              static_cast<unsigned long long>(sink.records_written()),
              cli.store_path.c_str(),
              static_cast<unsigned long long>(first_key),
              static_cast<unsigned long long>(
                  record_store.record_count() == first_key
                      ? first_key
                      : record_store.record_count() - 1),
              static_cast<unsigned long long>(record_store.page_count()),
              record_store.index_segments());
  return batch->stats.failed == 0 ? 0 : 1;
}

// The `query` subcommand: key-range (and optional entity) scan over an
// existing store file, in a fresh process — what recovery and the learned
// index exist for.
int RunQuery(const CliOptions& cli) {
  if (!ValidateStrictFlags(cli)) return 2;
  if (cli.store_path.empty()) {
    std::fprintf(stderr, "query requires --store FILE\n");
    return 2;
  }
  if (!cli.file.empty()) {
    std::fprintf(stderr, "query takes no positional argument (did you mean "
                         "--store %s?)\n", cli.file.c_str());
    return 2;
  }
  if (cli.min_key >= 0 && cli.max_key >= 0 && cli.min_key > cli.max_key) {
    std::fprintf(stderr, "--min-key %lld exceeds --max-key %lld\n",
                 cli.min_key, cli.max_key);
    return 2;
  }
  const std::string format = cli.format.empty() ? "text" : cli.format;
  if (format != "text" && format != "json") {
    std::fprintf(stderr, "query --format must be text or json, got %s\n",
                 format.c_str());
    return 2;
  }

  auto backend = store::OpenPosixFile(cli.store_path, /*create=*/false);
  if (!backend.ok()) {
    std::fprintf(stderr, "%s\n", backend.status().ToString().c_str());
    return 1;
  }
  auto opened = store::RecordStore::Open(std::move(backend).value());
  if (!opened.ok()) {
    std::fprintf(stderr, "%s\n", opened.status().ToString().c_str());
    return 1;
  }
  store::RecordStore& record_store = **opened;
  if (record_store.torn_pages_recovered() > 0) {
    std::fprintf(stderr, "recovered: dropped %llu torn page(s)\n",
                 static_cast<unsigned long long>(
                     record_store.torn_pages_recovered()));
  }

  store::ScanOptions scan;
  if (cli.min_key >= 0) scan.min_key = static_cast<uint64_t>(cli.min_key);
  if (cli.max_key >= 0) scan.max_key = static_cast<uint64_t>(cli.max_key);
  if (!cli.entity_filter.empty()) {
    scan.filter = [&cli](const store::StoredRecord& record) {
      return record.entity == cli.entity_filter;
    };
  }
  auto it = record_store.Scan(scan);
  store::StoredRecord record;
  uint64_t key = 0;
  unsigned long long matches = 0;
  while (it.Next(&record, &key)) {
    ++matches;
    if (cli.count_only) continue;
    if (format == "json") {
      std::string line = "{\"key\":" + std::to_string(key);
      line += ",\"document\":" + std::to_string(record.document_index);
      line += ",\"record\":" + std::to_string(record.record_index);
      line += ",\"entity\":" + serve::JsonString(record.entity);
      line += ",\"fields\":[";
      for (size_t i = 0; i < record.fields.size(); ++i) {
        if (i > 0) line += ",";
        line += "[" + serve::JsonString(record.fields[i].first) + "," +
                serve::JsonString(record.fields[i].second) + "]";
      }
      line += "]}";
      std::printf("%s\n", line.c_str());
    } else {
      std::printf("key=%llu document=%u record=%u entity=%s\n",
                  static_cast<unsigned long long>(key), record.document_index,
                  record.record_index, record.entity.c_str());
      for (const auto& field : record.fields) {
        std::printf("  %s: %s\n", field.first.c_str(), field.second.c_str());
      }
    }
  }
  if (!it.status().ok()) {
    std::fprintf(stderr, "%s\n", it.status().ToString().c_str());
    return 1;
  }
  if (cli.count_only) {
    std::printf("%llu\n", matches);
  } else {
    std::fprintf(stderr, "%llu record(s) matched\n", matches);
  }
  return 0;
}

int RunDemo() {
  std::printf("Running the paper's Figure 2 worked example.\n\n");
  auto discovery = DiscoverRecordBoundaries(Figure2Document());
  if (!discovery.ok()) {
    std::fprintf(stderr, "%s\n", discovery.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\nseparator: <%s>\n", discovery->tree.ToAsciiArt().c_str(),
              discovery->result.separator.c_str());
  return 0;
}

// Writes the global metrics snapshot to cli.metrics_out ("-" = stdout).
// An explicit --metrics-format wins; otherwise a .prom suffix selects
// Prometheus text format and anything else JSON. The explicit flag is the
// only way to get Prometheus text on stdout — "-" has no extension to
// infer from, which used to silently force JSON. Returns false when the
// file cannot be written.
bool WriteMetricsSnapshot(const CliOptions& cli) {
  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  const std::string& path = cli.metrics_out;
  obs::SnapshotFormat format = obs::SnapshotFormat::kJson;
  if (cli.metrics_format.has_value()) {
    format = *cli.metrics_format;
  } else if (path.size() >= 5 &&
             path.compare(path.size() - 5, 5, ".prom") == 0) {
    format = obs::SnapshotFormat::kPrometheus;
  }
  const std::string body = obs::RenderSnapshot(snapshot, format);
  if (path == "-") {
    std::fwrite(body.data(), 1, body.size(), stdout);
    return true;
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write metrics to %s\n", path.c_str());
    return false;
  }
  out << body;
  return out.good();
}

int Dispatch(const CliOptions& cli) {
  if (cli.command == "demo") return RunDemo();
  if (cli.command == "batch") return RunBatch(cli);
  if (cli.command == "store") return RunStore(cli);
  if (cli.command == "query") return RunQuery(cli);
  if (cli.file.empty()) return Usage();
  if (cli.command == "discover") return RunDiscover(cli);
  if (cli.command == "extract") return RunExtract(cli);
  if (cli.command == "populate") return RunPopulate(cli);
  if (cli.command == "classify") return RunClassify(cli);
  std::fprintf(stderr, "unknown command: %s\n", cli.command.c_str());
  return Usage();
}

int Main(int argc, char** argv) {
  CliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) return Usage();
  if (!cli.metrics_out.empty()) {
    obs::SetMetricsEnabled(true);
    // Pre-register the documented catalog so the snapshot carries every
    // contract metric even when a command never touches a subsystem.
    obs::EnsureDocumentedMetricsRegistered();
  }
  int status = Dispatch(cli);
  if (!cli.metrics_out.empty() && !WriteMetricsSnapshot(cli) && status == 0) {
    status = 1;
  }
  return status;
}

}  // namespace
}  // namespace webrbd

int main(int argc, char** argv) { return webrbd::Main(argc, argv); }
