# Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
#
# ctest script: runs `webrbd_cli batch --metrics-out` and fails unless the
# snapshot carries every documented metric (the observability contract —
# keep the list in sync with src/obs/stages.h and docs/observability.md).
#
# Expects: -DWEBRBD_CLI=<path to webrbd_cli> -DOUT_DIR=<writable dir>

set(DOCUMENTED_METRICS
    webrbd_stage_lex_seconds
    webrbd_stage_tree_build_seconds
    webrbd_stage_candidates_seconds
    webrbd_stage_heuristic_om_seconds
    webrbd_stage_heuristic_rp_seconds
    webrbd_stage_heuristic_sd_seconds
    webrbd_stage_heuristic_it_seconds
    webrbd_stage_heuristic_ht_seconds
    webrbd_stage_combine_seconds
    webrbd_stage_recognize_seconds
    webrbd_stage_drt_seconds
    webrbd_stage_dbgen_seconds
    webrbd_stage_document_seconds
    webrbd_pipeline_documents_total
    webrbd_pool_queue_depth
    webrbd_pool_workers
    webrbd_pool_utilization
    webrbd_pool_tasks_total
    webrbd_pool_inline_runs_total
    webrbd_pool_busy_nanos_total
    webrbd_pool_submit_block_seconds
    webrbd_rcache_hits_total
    webrbd_rcache_misses_total
    webrbd_rcache_compile_seconds
    webrbd_template_cache_hits_total
    webrbd_template_cache_misses_total
    webrbd_template_cache_fallbacks_total
    webrbd_template_cache_evictions_total
    webrbd_template_cache_size
    webrbd_robust_limit_trips_doc_bytes_total
    webrbd_robust_limit_trips_tokens_total
    webrbd_robust_limit_trips_depth_total
    webrbd_robust_limit_trips_attrs_total
    webrbd_robust_limit_trips_attr_value_total
    webrbd_robust_limit_trips_regex_closure_total
    webrbd_robust_lexer_recoveries_total
    webrbd_html_lexer_bytes_total
    webrbd_html_lexer_tokens_total
    webrbd_html_lexer_name_spills_total
    webrbd_serve_requests_total
    webrbd_serve_inflight
    webrbd_serve_rejected_total
    webrbd_serve_request_seconds
    webrbd_serve_drain_seconds
    webrbd_serve_reloads_total
    webrbd_store_pages_written_total
    webrbd_store_pages_read_total
    webrbd_store_flushes_total
    webrbd_store_records_written_total
    webrbd_store_torn_pages_total
    webrbd_store_index_segments
    webrbd_store_query_seconds)

set(json_file ${OUT_DIR}/metrics_out.json)
execute_process(
    COMMAND ${WEBRBD_CLI} batch --generate 24 --threads 2
            --metrics-out ${json_file}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "webrbd_cli batch --metrics-out exited with ${rc}")
endif()
file(READ ${json_file} json)
foreach(metric IN LISTS DOCUMENTED_METRICS)
  string(FIND "${json}" "\"${metric}\"" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "metrics JSON is missing documented metric ${metric}")
  endif()
endforeach()
# The per-document stage histograms must have actually recorded spans: a
# 24-document batch leaves "count": 0 nowhere near the lex histogram.
string(FIND "${json}" "webrbd_stage_lex_seconds\": {\n      \"count\": 0" zero)
if(NOT zero EQUAL -1)
  message(FATAL_ERROR "lex stage recorded no spans")
endif()

# And the Prometheus rendering round-trips through the same flag.
set(prom_file ${OUT_DIR}/metrics_out.prom)
execute_process(
    COMMAND ${WEBRBD_CLI} batch --generate 6 --threads 2
            --metrics-out ${prom_file}
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "webrbd_cli batch --metrics-out .prom exited with ${rc}")
endif()
file(READ ${prom_file} prom)
foreach(needle
        "# TYPE webrbd_stage_document_seconds histogram"
        "webrbd_stage_document_seconds_bucket{le=\"+Inf\"}"
        "webrbd_stage_document_seconds_count"
        "# TYPE webrbd_pipeline_documents_total counter")
  string(FIND "${prom}" "${needle}" found)
  if(found EQUAL -1)
    message(FATAL_ERROR "Prometheus output is missing: ${needle}")
  endif()
endforeach()
