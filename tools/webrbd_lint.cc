// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// webrbd_lint: command-line driver for the repo's static checker
// (src/lint/linter.h). Walks the given files/directories, runs every rule,
// filters findings through the suppression file, and exits non-zero when
// any unsuppressed finding remains.
//
//   webrbd_lint [--root DIR] [--suppressions FILE] [--check-suppressions]
//               [--list-rules] PATH...
//
// PATH arguments are files or directories (searched recursively for
// .cc/.cpp/.h). --root sets the directory that findings and include-guard
// expectations are computed relative to; it defaults to the common parent
// implied by each PATH. --check-suppressions additionally fails the run
// when an entry in the suppression file matches no finding: stale entries
// are dead weight that silently widen what future findings get swallowed.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/linter.h"
#include "util/string_util.h"

namespace webrbd {
namespace lint {
namespace {

namespace fs = std::filesystem;

int Usage() {
  std::cerr << "usage: webrbd_lint [--root DIR] [--suppressions FILE] "
               "[--check-suppressions] [--list-rules] PATH...\n";
  return 2;
}

[[nodiscard]] Result<std::string> ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

/// Path of `file` relative to `root`, with forward slashes; falls back to
/// the path as given when it is not under `root`.
std::string RelativePath(const fs::path& file, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(file, root, ec);
  if (ec || rel.empty() || *rel.begin() == "..") rel = file;
  return rel.generic_string();
}

bool IsLintableFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".cpp" || ext == ".h";
}

int Run(int argc, char** argv) {
  std::string root_arg;
  std::string suppressions_file;
  bool check_suppressions = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (++i >= argc) return Usage();
      root_arg = argv[i];
    } else if (arg == "--suppressions") {
      if (++i >= argc) return Usage();
      suppressions_file = argv[i];
    } else if (arg == "--check-suppressions") {
      check_suppressions = true;
    } else if (arg == "--list-rules") {
      for (const LintRuleInfo& rule : AllLintRules()) {
        std::cout << rule.name << ": " << rule.description << "\n";
      }
      return 0;
    } else if (StartsWith(arg, "--")) {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return Usage();

  SuppressionList suppressions;
  if (!suppressions_file.empty()) {
    auto text = ReadFile(suppressions_file);
    if (!text.ok()) {
      std::cerr << "webrbd_lint: " << text.status().ToString() << "\n";
      return 2;
    }
    auto parsed = SuppressionList::Parse(*text);
    if (!parsed.ok()) {
      std::cerr << "webrbd_lint: " << suppressions_file << ": "
                << parsed.status().ToString() << "\n";
      return 2;
    }
    suppressions = std::move(parsed).value();
  }

  // Collect every lintable file under the given paths.
  std::vector<fs::path> files;
  for (const std::string& path_arg : paths) {
    fs::path path(path_arg);
    std::error_code ec;
    if (fs::is_directory(path, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(path, ec)) {
        if (entry.is_regular_file() && IsLintableFile(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(path, ec)) {
      files.push_back(path);
    } else {
      std::cerr << "webrbd_lint: no such file or directory: " << path_arg
                << "\n";
      return 2;
    }
  }
  std::sort(files.begin(), files.end());

  const fs::path root =
      root_arg.empty() ? fs::current_path() : fs::path(root_arg);

  auto linter = Linter::Create();
  if (!linter.ok()) {
    std::cerr << "webrbd_lint: " << linter.status().ToString() << "\n";
    return 2;
  }

  // Pass 1: learn every Status/Result-returning function name, so the
  // unchecked-status rule sees calls across translation units.
  std::vector<LintSource> sources;
  sources.reserve(files.size());
  for (const fs::path& file : files) {
    auto content = ReadFile(file);
    if (!content.ok()) {
      std::cerr << "webrbd_lint: " << content.status().ToString() << "\n";
      return 2;
    }
    sources.push_back(LintSource{RelativePath(file, root),
                                 std::move(content).value()});
    linter->CollectDeclarations(sources.back());
  }

  // Pass 2: lint.
  std::vector<LintFinding> findings;
  for (const LintSource& source : sources) {
    linter->LintFile(source, &findings);
  }

  size_t suppressed = 0;
  size_t reported = 0;
  for (const LintFinding& finding : findings) {
    if (suppressions.Matches(finding)) {
      ++suppressed;
      continue;
    }
    ++reported;
    std::cout << FormatFinding(finding) << "\n";
  }

  // Stale-suppression audit: an entry that matched nothing in this run is
  // masking a finding that no longer exists (fixed code, renamed file, or
  // a rule change) and should be pruned.
  size_t stale = 0;
  if (check_suppressions) {
    for (const std::string& entry : suppressions.StaleEntries(findings)) {
      ++stale;
      std::cout << suppressions_file << ": stale suppression (matches no "
                << "finding): " << entry << "\n";
    }
  }

  std::cout << "webrbd_lint: " << sources.size() << " files, " << reported
            << " finding(s), " << suppressed << " suppressed";
  if (check_suppressions) std::cout << ", " << stale << " stale entr(ies)";
  std::cout << "\n";
  return reported == 0 && stale == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lint
}  // namespace webrbd

int main(int argc, char** argv) { return webrbd::lint::Run(argc, argv); }
