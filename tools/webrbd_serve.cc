// Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
//
// webrbd_serve: the extraction-as-a-service daemon. Binds an HTTP/1.1
// endpoint (serve/server.h) over the ExtractionService (serve/service.h)
// and runs until SIGTERM/SIGINT, then drains gracefully: stop accepting,
// finish every in-flight request, write a final metrics snapshot, exit 0.
//
//   webrbd_serve --port 8080 --ontology obituaries.onto \
//                --max-inflight 64 --metrics-out final.prom
//
// See docs/serving.md for the endpoint contract and operational guidance.

#include <cerrno>
#include <climits>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include <unistd.h>

#include "extract/record_sink.h"
#include "obs/metrics.h"
#include "obs/stages.h"
#include "ontology/bundled.h"
#include "robust/limits.h"
#include "serve/server.h"
#include "serve/service.h"
#include "store/file_interface.h"
#include "store/record_store.h"
#include "util/result.h"

namespace webrbd {
namespace {

struct ServeCliOptions {
  std::string host = "127.0.0.1";
  int port = 8080;
  std::string ontology_file;  // empty = bundled obituaries ontology
  int io_threads = 0;
  int max_inflight = 0;
  int retry_after = 1;
  long long max_doc_bytes = -1;  // -1 = keep the production default
  long long max_depth = -1;
  bool unlimited = false;
  long long max_body_bytes = -1;
  std::string metrics_out;
  std::optional<obs::SnapshotFormat> metrics_format;
  std::string store_file;        // empty = no persistent ingest
  long long store_page_bytes = -1;  // -1 = store default
};

int Usage() {
  std::fprintf(
      stderr,
      "usage: webrbd_serve [options]\n"
      "options:  --host ADDR        bind address (default 127.0.0.1)\n"
      "          --port N           port; 0 picks one (default 8080)\n"
      "          --ontology FILE    ontology DSL (default: bundled\n"
      "                             obituaries); re-read on empty-body\n"
      "                             POST /reload-ontology\n"
      "          --io-threads N     connection workers (default: #cores)\n"
      "          --max-inflight N   admitted requests before 503\n"
      "          --retry-after N    Retry-After seconds on 503 (default 1)\n"
      "          --max-doc-bytes N  per-document byte ceiling\n"
      "          --max-depth N      per-document tree-depth ceiling\n"
      "          --unlimited        disable every document limit\n"
      "          --max-body-bytes N HTTP request-body cap\n"
      "          --metrics-out FILE final snapshot on shutdown (- = stdout)\n"
      "          --metrics-format json|prom  (overrides the .prom\n"
      "                             extension rule; required for stdout)\n"
      "          --store FILE       persist every extracted record to this\n"
      "                             page-based record store (created when\n"
      "                             absent, appended to when present)\n"
      "          --store-page-bytes N  page size for a NEW store file\n");
  return 2;
}

// Strict non-negative integer flag parse (same contract as webrbd_cli's:
// the whole value must be one decimal integer, no strtol half-reads).
bool ParseCount(const char* flag, const char* v, long long* out) {
  if (v == nullptr || *v == '\0') {
    std::fprintf(stderr, "%s: expected a non-negative integer\n", flag);
    return false;
  }
  long long value = 0;
  for (const char* p = v; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') {
      std::fprintf(stderr, "%s: expected a non-negative integer, got \"%s\"\n",
                   flag, v);
      return false;
    }
    if (value > (LLONG_MAX - (*p - '0')) / 10) {
      std::fprintf(stderr, "%s: value \"%s\" is out of range\n", flag, v);
      return false;
    }
    value = value * 10 + (*p - '0');
  }
  *out = value;
  return true;
}

bool ParseArgs(int argc, char** argv, ServeCliOptions* options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    long long count = 0;
    if (arg == "--host") {
      const char* v = next();
      if (v == nullptr) return false;
      options->host = v;
    } else if (arg == "--port") {
      if (!ParseCount("--port", next(), &count) || count > 65535) return false;
      options->port = static_cast<int>(count);
    } else if (arg == "--ontology") {
      const char* v = next();
      if (v == nullptr) return false;
      options->ontology_file = v;
    } else if (arg == "--io-threads") {
      if (!ParseCount("--io-threads", next(), &count)) return false;
      options->io_threads = static_cast<int>(count);
    } else if (arg == "--max-inflight") {
      if (!ParseCount("--max-inflight", next(), &count)) return false;
      options->max_inflight = static_cast<int>(count);
    } else if (arg == "--retry-after") {
      if (!ParseCount("--retry-after", next(), &count)) return false;
      options->retry_after = static_cast<int>(count);
    } else if (arg == "--max-doc-bytes") {
      if (!ParseCount("--max-doc-bytes", next(), &count)) return false;
      options->max_doc_bytes = count;
    } else if (arg == "--max-depth") {
      if (!ParseCount("--max-depth", next(), &count)) return false;
      options->max_depth = count;
    } else if (arg == "--unlimited") {
      options->unlimited = true;
    } else if (arg == "--max-body-bytes") {
      if (!ParseCount("--max-body-bytes", next(), &count)) return false;
      options->max_body_bytes = count;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (v == nullptr) return false;
      options->metrics_out = v;
    } else if (arg == "--store") {
      const char* v = next();
      if (v == nullptr || *v == '\0') {
        std::fprintf(stderr, "--store: expected a file path\n");
        return false;
      }
      options->store_file = v;
    } else if (arg == "--store-page-bytes") {
      if (!ParseCount("--store-page-bytes", next(), &count)) return false;
      options->store_page_bytes = count;
    } else if (arg == "--metrics-format") {
      const char* v = next();
      if (v == nullptr) return false;
      obs::SnapshotFormat format;
      if (v == nullptr || !obs::ParseSnapshotFormat(v, &format)) {
        std::fprintf(stderr,
                     "--metrics-format: expected json or prom, got \"%s\"\n",
                     v == nullptr ? "" : v);
        return false;
      }
      options->metrics_format = format;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

Result<std::string> LoadOntologyDsl(const ServeCliOptions& cli) {
  if (cli.ontology_file.empty()) {
    return BundledOntologyDsl(Domain::kObituaries);
  }
  std::ifstream in(cli.ontology_file, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + cli.ontology_file);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

robust::DocumentLimits LimitsFromCli(const ServeCliOptions& cli) {
  robust::DocumentLimits limits = cli.unlimited
                                      ? robust::DocumentLimits::Unlimited()
                                      : robust::DocumentLimits::Production();
  if (cli.max_doc_bytes >= 0) {
    limits.max_document_bytes = static_cast<size_t>(cli.max_doc_bytes);
  }
  if (cli.max_depth >= 0) {
    limits.max_tree_depth = static_cast<size_t>(cli.max_depth);
  }
  return limits;
}

bool WriteFinalSnapshot(const ServeCliOptions& cli) {
  if (cli.metrics_out.empty()) return true;
  const obs::MetricsSnapshot snapshot =
      obs::MetricsRegistry::Global().Snapshot();
  obs::SnapshotFormat format = obs::SnapshotFormat::kJson;
  if (cli.metrics_format.has_value()) {
    format = *cli.metrics_format;
  } else if (cli.metrics_out.size() >= 5 &&
             cli.metrics_out.compare(cli.metrics_out.size() - 5, 5,
                                     ".prom") == 0) {
    format = obs::SnapshotFormat::kPrometheus;
  }
  const std::string body = obs::RenderSnapshot(snapshot, format);
  if (cli.metrics_out == "-") {
    std::fwrite(body.data(), 1, body.size(), stdout);
    return true;
  }
  std::ofstream out(cli.metrics_out, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "cannot write metrics to %s\n",
                 cli.metrics_out.c_str());
    return false;
  }
  out << body;
  return out.good();
}

// Self-pipe signal plumbing: the handler does the only async-signal-safe
// thing — write one byte — and the main thread sleeps in read(2) until a
// shutdown signal (or two, which is still one drain) arrives.
int g_signal_pipe[2] = {-1, -1};

extern "C" void HandleShutdownSignal(int) {
  const char byte = 1;
  // write(2) is async-signal-safe; the result is deliberately ignored
  // (a full pipe means a signal is already pending — same outcome).
  const ssize_t ignored = ::write(g_signal_pipe[1], &byte, 1);
  (void)ignored;
}

int Main(int argc, char** argv) {
  ServeCliOptions cli;
  if (!ParseArgs(argc, argv, &cli)) return Usage();

  obs::SetMetricsEnabled(true);
  obs::EnsureDocumentedMetricsRegistered();

  auto dsl = LoadOntologyDsl(cli);
  if (!dsl.ok()) {
    std::fprintf(stderr, "%s\n", dsl.status().ToString().c_str());
    return 1;
  }

  // Optional persistent ingest: every record any request extracts is also
  // appended to this store, via an internally synchronized StoreSink that
  // all transport threads share. The store flushes on drain; mid-run
  // durability points happen whenever a page fills or a batch flushes.
  std::unique_ptr<store::RecordStore> record_store;
  std::unique_ptr<StoreSink> store_sink;
  if (!cli.store_file.empty()) {
    if (cli.store_page_bytes >= 0 &&
        (static_cast<size_t>(cli.store_page_bytes) < store::kMinPageSize ||
         static_cast<size_t>(cli.store_page_bytes) > store::kMaxPageSize)) {
      std::fprintf(stderr, "--store-page-bytes: %lld is outside [%zu, %zu]\n",
                   cli.store_page_bytes, store::kMinPageSize,
                   store::kMaxPageSize);
      return 1;
    }
    auto backend = store::OpenPosixFile(cli.store_file, /*create=*/true);
    if (!backend.ok()) {
      std::fprintf(stderr, "--store: %s\n",
                   backend.status().ToString().c_str());
      return 1;
    }
    store::StoreOptions store_options;
    if (cli.store_page_bytes >= 0) {
      store_options.page_size = static_cast<size_t>(cli.store_page_bytes);
    }
    auto opened =
        store::RecordStore::Open(std::move(backend).value(), store_options);
    if (!opened.ok()) {
      std::fprintf(stderr, "--store: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    record_store = std::move(opened).value();
    store_sink = std::make_unique<StoreSink>(record_store.get());
    std::fprintf(stderr, "ingesting into %s (%llu records on open)\n",
                 record_store->DebugName().c_str(),
                 static_cast<unsigned long long>(record_store->record_count()));
  }

  serve::ServiceOptions service_options;
  service_options.context.discovery.limits = LimitsFromCli(cli);
  service_options.ceilings = LimitsFromCli(cli);
  service_options.max_inflight = cli.max_inflight;
  service_options.retry_after_seconds = cli.retry_after;
  service_options.reload_source = [cli]() { return LoadOntologyDsl(cli); };
  service_options.ingest_sink = store_sink.get();
  auto service =
      serve::ExtractionService::Create(std::move(dsl).value(),
                                       std::move(service_options));
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }

  serve::ServerOptions server_options;
  server_options.host = cli.host;
  server_options.port = cli.port;
  server_options.io_threads = cli.io_threads;
  // The SLO smoke opens ~1k simultaneous connections; the listen(2)
  // default of 128 would bounce the burst before accept() ever saw it.
  server_options.backlog = 1024;
  if (cli.max_body_bytes >= 0) {
    server_options.parse_limits.max_body_bytes =
        static_cast<size_t>(cli.max_body_bytes);
  }
  serve::ExtractionService* service_ptr = service->get();
  auto server = serve::HttpServer::Start(
      std::move(server_options),
      [service_ptr](const serve::HttpRequest& request) {
        return service_ptr->Handle(request);
      });
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction action{};
  action.sa_handler = HandleShutdownSignal;
  ::sigemptyset(&action.sa_mask);
  (void)::sigaction(SIGTERM, &action, nullptr);
  (void)::sigaction(SIGINT, &action, nullptr);

  // The startup line scripts wait for (bench/bench_serve_load.py parses
  // the port out of it). Flushed so a pipe reader sees it immediately.
  std::printf("webrbd_serve listening on %s:%d\n", cli.host.c_str(),
              (*server)->port());
  std::fflush(stdout);

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::fprintf(stderr, "shutdown signal received; draining\n");
  service_ptr->BeginDrain();
  (*server)->Drain();
  bool store_flushed = true;
  if (record_store != nullptr) {
    // All requests have finished; make the tail durable before exit.
    Status flushed = record_store->Flush();
    if (!flushed.ok()) {
      std::fprintf(stderr, "--store flush failed: %s\n",
                   flushed.ToString().c_str());
      store_flushed = false;
    } else {
      std::fprintf(stderr, "store flushed: %llu records, %llu pages\n",
                   static_cast<unsigned long long>(
                       record_store->record_count()),
                   static_cast<unsigned long long>(record_store->page_count()));
    }
  }
  const bool wrote = WriteFinalSnapshot(cli);
  std::fprintf(stderr, "drain complete\n");
  return wrote && store_flushed ? 0 : 1;
}

}  // namespace
}  // namespace webrbd

int main(int argc, char** argv) { return webrbd::Main(argc, argv); }
