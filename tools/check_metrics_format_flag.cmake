# Copyright (c) the webrbd authors. Licensed under the Apache License 2.0.
#
# ctest script: --metrics-format must override the file-extension rule.
# Writes a snapshot to a .prom-named file while forcing json, and to a
# .json-named file while forcing prom, and checks each body's format.
#
# Expects: -DWEBRBD_CLI=<path to webrbd_cli> -DOUT_DIR=<writable dir>

set(json_in_prom ${OUT_DIR}/format_flag.prom)
execute_process(
    COMMAND ${WEBRBD_CLI} batch --generate 4 --threads 1
            --metrics-out ${json_in_prom} --metrics-format json
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--metrics-format json into .prom exited with ${rc}")
endif()
file(READ ${json_in_prom} body)
string(FIND "${body}" "\"webrbd_stage_document_seconds\"" has_json)
string(FIND "${body}" "# TYPE" has_prom)
if(has_json EQUAL -1 OR NOT has_prom EQUAL -1)
  message(FATAL_ERROR "--metrics-format json did not override .prom suffix")
endif()

set(prom_in_json ${OUT_DIR}/format_flag.json)
execute_process(
    COMMAND ${WEBRBD_CLI} batch --generate 4 --threads 1
            --metrics-out ${prom_in_json} --metrics-format prom
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "--metrics-format prom into .json exited with ${rc}")
endif()
file(READ ${prom_in_json} body)
string(FIND "${body}" "# TYPE webrbd_stage_document_seconds histogram" found)
if(found EQUAL -1)
  message(FATAL_ERROR "--metrics-format prom did not override .json suffix")
endif()
